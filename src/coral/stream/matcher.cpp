#include "coral/stream/matcher.hpp"

#include <algorithm>

namespace coral::stream {

void StreamingMatcher::on_job_start(TimePoint t, const joblog::JobRecord&, std::size_t) {
  advance(t);
}

void StreamingMatcher::on_ras(TimePoint t, const ras::RasEvent&, std::size_t) {
  advance(t);
}

void StreamingMatcher::on_job_end(TimePoint t, const joblog::JobRecord& job,
                                  std::size_t job_index) {
  ends_.push_back(JobEnd{job.end_time, job.start_time, job_index, job.partition});
  note_peak();
  advance(t);
}

void StreamingMatcher::on_group(StreamGroup&& g) {
  pending_.push_back(std::move(g));
  note_peak();
  resolve();
}

void StreamingMatcher::on_watermark(TimePoint low) {
  // Watermarks are promises ("no future group earlier than this"); an
  // earlier-issued stronger promise stays valid, so keep the max.
  if (!group_low_known_ || low > group_low_) {
    group_low_ = low;
    group_low_known_ = true;
  }
  evict();
}

void StreamingMatcher::flush() {
  while (!pending_.empty()) emit_front();
  ends_.clear();
}

void StreamingMatcher::advance(TimePoint t) {
  if (t > watermark_) watermark_ = t;
  resolve();
  evict();
}

void StreamingMatcher::resolve() {
  // Strict >: at watermark == rep + window a job ending exactly on the edge
  // may not have been delivered yet (several events can share a timestamp).
  while (!pending_.empty() && watermark_ - pending_.front().rep_time > window_) emit_front();
}

void StreamingMatcher::emit_front() {
  StreamGroup group = std::move(pending_.front());
  pending_.pop_front();

  const TimePoint rep_time = group.rep_time;
  const TimePoint lo = rep_time - window_;
  const TimePoint hi = rep_time + window_;

  GroupMatch match;
  match.group = std::move(group);
  auto it = std::lower_bound(ends_.begin(), ends_.end(), lo,
                             [](const JobEnd& e, TimePoint t) { return e.end < t; });
  for (; it != ends_.end() && it->end <= hi; ++it) {
    if (it->start > hi) continue;  // not yet running at the event
    bool covered = it->partition.covers_key(match.group.rep_key, codec_);
    if (!covered) {
      for (const GroupMember& m : match.group.extra) {
        if (it->partition.covers_key(m.loc_key, codec_)) {
          covered = true;
          break;
        }
      }
    }
    if (covered) match.jobs.push_back(it->job);
  }
  // End-time order can differ from job-index order; the batch matcher
  // collects into a std::set, so emit ascending indices (duplicates are
  // impossible: one end record per job).
  std::sort(match.jobs.begin(), match.jobs.end());

  ++groups_out_;
  on_match_(std::move(match));
}

void StreamingMatcher::evict() {
  if (!group_low_known_) return;
  // The earliest rep any unresolved or future group can carry:
  TimePoint low = group_low_;
  if (!pending_.empty() && pending_.front().rep_time < low) low = pending_.front().rep_time;
  // Keep every end with end_time >= low - window (the window is inclusive on
  // both edges); evict strictly older ones.
  while (!ends_.empty() && ends_.front().end < low - window_) ends_.pop_front();
}

}  // namespace coral::stream
