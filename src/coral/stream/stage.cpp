#include "coral/stream/stage.hpp"

#include <algorithm>

namespace coral::stream {

void absorb(StreamGroup& dst, StreamGroup&& src) {
  // Grow geometrically: storm chains absorb thousands of singletons one at a
  // time, and an exact reserve() per absorb would degrade to O(n^2) copies.
  const std::size_t needed = dst.extra.size() + src.size();
  if (dst.extra.capacity() < needed) {
    dst.extra.reserve(std::max(needed, dst.extra.capacity() * 2));
  }
  dst.extra.push_back({src.rep, src.rep_key});
  for (GroupMember& m : src.extra) dst.extra.push_back(m);
  src.extra.clear();
}

filter::EventGroup to_event_group(const StreamGroup& g) {
  filter::EventGroup out;
  out.rep = g.rep;
  out.members.reserve(g.size());
  out.members.push_back(g.rep);
  for (const GroupMember& m : g.extra) out.members.push_back(m.index);
  return out;
}

StageDriver::StageDriver(const ras::RasLog& ras, const joblog::JobLog& jobs,
                         ras::Severity min_severity)
    : feed_(ras, jobs), jobs_base_(jobs.jobs().data()) {
  feed_.on_job_start([this](TimePoint t, const core::EventFeed::JobStart& e) {
    const auto idx = static_cast<std::size_t>(e.job - jobs_base_);
    for (Stage* s : stages_) s->on_job_start(t, *e.job, idx);
  });
  feed_.on_job_end([this](TimePoint t, const core::EventFeed::JobEnd& e) {
    const auto idx = static_cast<std::size_t>(e.job - jobs_base_);
    for (Stage* s : stages_) s->on_job_end(t, *e.job, idx);
  });
  feed_.on_ras(
      [this](TimePoint t, const core::EventFeed::RasRecord& r) {
        const std::size_t idx = ras_index_++;
        for (Stage* s : stages_) s->on_ras(t, *r.event, idx);
      },
      min_severity);
}

std::size_t StageDriver::replay() {
  const std::size_t n = feed_.replay();
  flush();
  return n;
}

std::size_t StageDriver::replay(TimePoint begin, TimePoint end) {
  return feed_.replay(begin, end);
}

void StageDriver::flush() {
  for (Stage* s : stages_) s->flush();
}

}  // namespace coral::stream
