#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "coral/bgp/location.hpp"
#include "coral/bgp/topology.hpp"
#include "coral/core/interarrival.hpp"
#include "coral/joblog/job.hpp"
#include "coral/machine/model.hpp"

namespace coral::stream {

/// Incremental collector for interarrival fitting: feed event times as they
/// stream by, fit at the end. Fitting sorts internally, so merge order does
/// not affect the result — shards can be concatenated in any order.
class InterarrivalAccumulator {
 public:
  void add(TimePoint t) { times_.push_back(t); }
  void merge(const InterarrivalAccumulator& other) {
    times_.insert(times_.end(), other.times_.begin(), other.times_.end());
  }
  std::size_t count() const { return times_.size(); }

  /// The fitted distributions, or nullopt below the 3-sample minimum —
  /// exactly the batch pipeline's `times.size() >= 3` guard.
  std::optional<core::InterarrivalFit> fit() const {
    if (times_.size() < 3) return std::nullopt;
    return core::fit_interarrivals(core::interarrival_seconds(times_));
  }

 private:
  std::vector<TimePoint> times_;
};

/// Per-day event counter (Fig. 5): bucket = floor days since `origin`.
class DailyCounter {
 public:
  explicit DailyCounter(TimePoint origin) : origin_(origin) {}

  void add(TimePoint t);
  /// Grow to at least `n` buckets (the batch path always materializes day 0
  /// when the job log is non-empty, even with zero interruptions).
  void ensure_days(std::size_t n) {
    if (counts_.size() < n) counts_.resize(n, 0);
  }
  void merge(const DailyCounter& other);

  const std::vector<int>& counts() const { return counts_; }
  std::vector<int> take() { return std::move(counts_); }

 private:
  TimePoint origin_;
  std::vector<int> counts_;
};

/// Per-midplane tallies for the Fig. 4 series: fatal-event counts (rack-
/// level events split evenly over the rack's midplanes) and workload in
/// midplane-seconds (all jobs, and wide jobs at or above the machine's
/// wide threshold — 32 midplanes on the reference BG/P).
///
/// Additions replicate the batch loops operation-for-operation, so feeding
/// groups/jobs in log order reproduces the batch sums bit-for-bit. The
/// fatal tallies are sums of 1.0/0.5 (dyadic, exact under any order); the
/// workload sums are merged in shard order for determinism.
class MidplaneTallies {
 public:
  MidplaneTallies() : MidplaneTallies(machine::bgp_model()) {}
  explicit MidplaneTallies(const machine::MachineModel& machine)
      : fatal_events(static_cast<std::size_t>(machine.midplane_count()), 0.0),
        workload_sec(static_cast<std::size_t>(machine.midplane_count()), 0.0),
        wide_workload_sec(static_cast<std::size_t>(machine.midplane_count()), 0.0),
        codec_(machine.codec()),
        wide_threshold_(machine.placement_zones().wide_threshold) {}

  void add_group_rep(const bgp::Location& rep_location);
  /// Packed-key variant for columnar/streaming paths: decodes through the
  /// machine codec, no Location materialization.
  void add_group_rep(std::uint32_t loc_key);
  void add_job(const joblog::JobRecord& job);
  void merge(const MidplaneTallies& other);

  std::vector<double> fatal_events;
  std::vector<double> workload_sec;
  std::vector<double> wide_workload_sec;

 private:
  machine::LocCodec codec_;
  int wide_threshold_ = 32;
};

}  // namespace coral::stream
