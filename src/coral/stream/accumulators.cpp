#include "coral/stream/accumulators.hpp"

#include "coral/common/error.hpp"

namespace coral::stream {

void DailyCounter::add(TimePoint t) {
  const std::int64_t day = t.days_since(origin_);
  CORAL_EXPECTS(day >= 0);
  const auto bucket = static_cast<std::size_t>(day);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  counts_[bucket] += 1;
}

void DailyCounter::merge(const DailyCounter& other) {
  ensure_days(other.counts_.size());
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void MidplaneTallies::add_group_rep(const bgp::Location& rep_location) {
  const auto mid = rep_location.midplane_id();
  if (mid) {
    fatal_events[static_cast<std::size_t>(*mid)] += 1;
  } else {
    // Rack-level events touch every midplane in the rack; split the count.
    const int first = rep_location.rack_index() * codec_.midplanes_per_rack;
    const double share = 1.0 / codec_.midplanes_per_rack;
    for (int i = 0; i < codec_.midplanes_per_rack; ++i) {
      fatal_events[static_cast<std::size_t>(first + i)] += share;
    }
  }
}

void MidplaneTallies::add_group_rep(std::uint32_t loc_key) {
  if (!codec_.is_rack(loc_key)) {
    fatal_events[static_cast<std::size_t>(codec_.midplane_of(loc_key))] += 1;
  } else {
    const auto first = codec_.rack_first_midplane(loc_key);
    const double share = 1.0 / codec_.midplanes_per_rack;
    for (int i = 0; i < codec_.midplanes_per_rack; ++i) {
      fatal_events[static_cast<std::size_t>(first + i)] += share;
    }
  }
}

void MidplaneTallies::add_job(const joblog::JobRecord& job) {
  const double seconds =
      static_cast<double>(job.runtime()) / static_cast<double>(kUsecPerSec);
  const bool wide = job.size_midplanes() >= wide_threshold_;
  for (bgp::MidplaneId m : job.partition.midplanes()) {
    workload_sec[static_cast<std::size_t>(m)] += seconds;
    if (wide) wide_workload_sec[static_cast<std::size_t>(m)] += seconds;
  }
}

void MidplaneTallies::merge(const MidplaneTallies& other) {
  for (std::size_t i = 0; i < fatal_events.size(); ++i) {
    fatal_events[i] += other.fatal_events[i];
    workload_sec[i] += other.workload_sec[i];
    wide_workload_sec[i] += other.wide_workload_sec[i];
  }
}

}  // namespace coral::stream
