#include "coral/stream/coanalysis.hpp"

#include <algorithm>
#include <optional>
#include <span>

#include "coral/common/parallel.hpp"
#include "coral/obs/obs.hpp"
#include "coral/stream/filter_stages.hpp"
#include "coral/stream/matcher.hpp"

namespace coral::stream {

namespace {

/// Everything one shard produces; slots are disjoint across workers.
struct ShardOutput {
  // Phase 1.
  std::vector<StreamGroup> spatial_groups;  ///< buffered for phase 2
  PairMiner::Counts counts;
  std::size_t temporal_out = 0;
  std::size_t spatial_out = 0;
  std::size_t peak_phase1 = 0;
  // Phase 2.
  std::vector<StreamGroup> final_groups;
  std::vector<std::vector<std::size_t>> matched_jobs;
  std::size_t peak_phase2 = 0;
};

}  // namespace

FrontEndResult run_streaming_frontend(const ras::RasLog& ras, const joblog::JobLog& jobs,
                                      const FrontEndConfig& config, const Context& ctx) {
  InstrumentationSink* sink = ctx.sink();
  FrontEndResult r;
  // Gather FATAL records through the severity index maintained at ingest
  // (RasLog::finalize) instead of re-scanning the full log: the streaming
  // engine amortises discovery work into ingest, the batch pipeline re-scans
  // per its original materialise-everything design.
  {
    StageTimer timer(sink, "ingest");
    const auto& idx = ras.fatal_indices();
    r.filtered.fatal_events.reserve(idx.size());
    for (const std::size_t i : idx) r.filtered.fatal_events.push_back(ras[i]);
    timer.counts(ras.size(), r.filtered.fatal_events.size());
  }
  // The SoA view drives the hot loops; fatal_events above is only the
  // materialised copy downstream reports expect.
  const ras::FatalColumns& cols = ras.fatal_columns();
  const std::size_t fatal_count = cols.size();
  const auto& all_jobs = jobs.jobs();
  const bool causality = config.filters.enable_causality;

  // Job terminations in end-time order (ties by index; per-group match sets
  // are index-sorted downstream, so the tie rule cannot change results).
  // The order is likewise prebuilt at ingest.
  const std::vector<std::size_t>& by_end = jobs.by_end_time();

  // Shard plan: cuts only at quiesce gaps, so shard concatenation is exact.
  // The planner reads the event-time column in place — no gather copy.
  ShardPlan plan;
  if (config.shards > 1 && fatal_count >= 2) {
    const Usec quiesce =
        quiesce_gap(config.filters.temporal.threshold, config.filters.spatial.threshold,
                    causality ? config.filters.causality.window : 0, config.match_window);
    plan = plan_shards(cols.event_time, config.shards, quiesce);
  }
  const std::size_t nshards = plan.shard_count();
  r.shards_used = nshards;

  // Per-shard half-open index ranges over the fatal records and the
  // end-ordered job list.
  std::vector<std::size_t> fatal_begin(nshards + 1, 0);
  std::vector<std::size_t> ends_begin(nshards + 1, 0);
  fatal_begin[nshards] = fatal_count;
  ends_begin[nshards] = by_end.size();
  for (std::size_t s = 1; s < nshards; ++s) {
    const TimePoint cut = plan.cuts[s - 1];
    fatal_begin[s] = static_cast<std::size_t>(
        std::partition_point(cols.event_time.begin(), cols.event_time.end(),
                             [cut](TimePoint t) { return t < cut; }) -
        cols.event_time.begin());
    ends_begin[s] = static_cast<std::size_t>(
        std::partition_point(by_end.begin(), by_end.end(),
                             [&all_jobs, cut](std::size_t j) {
                               return all_jobs[j].end_time < cut;
                             }) -
        by_end.begin());
  }

  std::vector<ShardOutput> shard(nshards);
  par::ThreadPool* pool = ctx.pool();
  const auto run_sharded = [&](auto&& body) {
    if (nshards > 1 && pool != nullptr && pool->thread_count() > 1) {
      par::parallel_for_chunks(nshards, 1, body, pool);
    } else {
      body(std::size_t{0}, nshards);
    }
  };

  // ---- Phase 1: temporal -> spatial coalescing, pair mining tapped off the
  // spatial output, groups buffered for phase 2 (one pass over the log). ----
  obs::Collector* obs = ctx.obs();

  StageTimer phase1_timer(sink, "filter.coalesce");
  run_sharded([&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      // One span per shard, reported from the worker that ran it, so a
      // Chrome trace shows the shard schedule across pool threads.
      obs::Span span(obs, "stream.shard.phase1");
      GroupBuffer buffer;
      StreamingFilter::Options opt;
      opt.temporal = config.filters.temporal;
      opt.spatial = config.filters.spatial;
      opt.causality = config.filters.causality;
      opt.mine_pairs = causality;
      StreamingFilter filter(std::move(opt), buffer);
      for (std::size_t i = fatal_begin[s]; i < fatal_begin[s + 1]; ++i) {
        filter.on_fatal(cols.event_time[i], cols.errcode[i], cols.loc_key[i], i);
      }
      filter.flush();
      ShardOutput& out = shard[s];
      out.spatial_groups = std::move(buffer.groups);
      if (filter.miner() != nullptr) out.counts = filter.miner()->take_counts();
      out.temporal_out = filter.temporal().out_count();
      out.spatial_out = filter.spatial().out_count();
      out.peak_phase1 = filter.peak_buffered();
      span.counts(fatal_begin[s + 1] - fatal_begin[s], out.spatial_out);
      CORAL_OBS_VALUE(obs, "stream.shard.peak_state",
                      static_cast<double>(out.peak_phase1));
    }
  });

  {
    std::size_t spatial_out = 0;
    for (const ShardOutput& s : shard) spatial_out += s.spatial_out;
    phase1_timer.counts(fatal_count, spatial_out);
    phase1_timer.report();
  }

  // ---- Merge mined counts; min-support is global, so acceptance must run
  // on the merged table (no co-occurrence spans a quiesce cut). ----
  if (causality) {
    StageTimer timer(sink, "mine.merge");
    PairMiner::Counts total;
    for (ShardOutput& s : shard) {
      PairMiner::merge_counts(total, s.counts);
      s.counts.clear();
    }
    r.filtered.causal_pairs = PairMiner::accept(total, config.filters.causality.min_support);
    timer.counts(total.size(), r.filtered.causal_pairs.size());
  }

  // ---- Phase 2: [causality ->] windowed matcher, merge-walking buffered
  // groups against job terminations in end-time order. ----
  StageTimer phase2_timer(sink, "filter.match");
  run_sharded([&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      obs::Span span(obs, "stream.shard.phase2");
      ShardOutput& out = shard[s];
      StreamingMatcher matcher(config.match_window,
                               [&out](StreamingMatcher::GroupMatch&& m) {
                                 out.final_groups.push_back(std::move(m.group));
                                 out.matched_jobs.push_back(std::move(m.jobs));
                               },
                               jobs.machine().codec());
      std::optional<CausalityCoalescer> caus;
      GroupSink* stage_sink = &matcher;
      if (causality) {
        caus.emplace(config.filters.causality.window, r.filtered.causal_pairs, &matcher);
        stage_sink = &*caus;
      }
      std::span<StreamGroup> groups(out.spatial_groups);
      std::size_t gi = 0;
      for (std::size_t k = ends_begin[s]; k < ends_begin[s + 1]; ++k) {
        const joblog::JobRecord& job = all_jobs[by_end[k]];
        while (gi < groups.size() && groups[gi].rep_time <= job.end_time) {
          stage_sink->on_group(std::move(groups[gi]));
          ++gi;
        }
        // Every group at or before this termination has been delivered, so
        // the matcher may evict job ends that fell out of all match windows.
        stage_sink->on_watermark(job.end_time);
        matcher.on_job_end(job.end_time, job, by_end[k]);
      }
      for (; gi < groups.size(); ++gi) stage_sink->on_group(std::move(groups[gi]));
      stage_sink->flush();  // cascades into the matcher
      out.peak_phase2 = matcher.peak_buffered() + (caus ? caus->peak_chains() : 0);
      span.counts(out.spatial_groups.size(), out.final_groups.size());
      CORAL_OBS_VALUE(obs, "stream.shard.peak_state",
                      static_cast<double>(out.peak_phase2));
      out.spatial_groups.clear();
      out.spatial_groups.shrink_to_fit();
    }
  });

  // ---- Deterministic merge: shard order equals time order, so plain
  // concatenation reproduces the batch group order. ----
  std::size_t temporal_total = 0, spatial_total = 0, groups_total = 0;
  for (const ShardOutput& s : shard) {
    temporal_total += s.temporal_out;
    spatial_total += s.spatial_out;
    groups_total += s.final_groups.size();
  }
  phase2_timer.counts(spatial_total, groups_total);
  phase2_timer.report();
  StageTimer merge_timer(sink, "merge");
  obs::Span merge_span(obs, "stream.merge");
  r.filtered.stages.push_back({"raw FATAL records", fatal_count, fatal_count});
  r.filtered.stages.push_back({"temporal", fatal_count, temporal_total});
  r.filtered.stages.push_back({"spatial", temporal_total, spatial_total});
  if (causality) {
    r.filtered.stages.push_back({"causality", spatial_total, groups_total});
  }

  r.filtered.groups.reserve(groups_total);
  r.matches.jobs_by_group.reserve(groups_total);
  for (ShardOutput& s : shard) {
    for (std::size_t i = 0; i < s.final_groups.size(); ++i) {
      r.filtered.groups.push_back(to_event_group(s.final_groups[i]));
      r.matches.jobs_by_group.push_back(std::move(s.matched_jobs[i]));
    }
    s.final_groups.clear();
    s.matched_jobs.clear();
  }

  // Global job assignment: a job belongs to its *first* matching group in
  // global group order — the exact batch phase 2, run at merge time so a job
  // near a shard boundary cannot be claimed twice.
  r.matches.group_by_job.assign(all_jobs.size(), std::nullopt);
  for (std::size_t g = 0; g < r.matches.jobs_by_group.size(); ++g) {
    for (std::size_t job_idx : r.matches.jobs_by_group[g]) {
      if (!r.matches.group_by_job[job_idx]) {
        r.matches.group_by_job[job_idx] = g;
        r.matches.interruptions.push_back({g, job_idx, all_jobs[job_idx].end_time});
      }
    }
  }
  std::sort(r.matches.interruptions.begin(), r.matches.interruptions.end(),
            [](const core::Interruption& a, const core::Interruption& b) {
              return a.time < b.time;
            });

  for (const ShardOutput& s : shard) {
    r.peak_stage_state = std::max({r.peak_stage_state, s.peak_phase1, s.peak_phase2});
  }
  merge_span.counts(groups_total, r.matches.interruptions.size());
  CORAL_OBS_VALUE(obs, "stream.peak_state", static_cast<double>(r.peak_stage_state));
  CORAL_OBS_COUNT(obs, "stream.shards_used", static_cast<std::int64_t>(nshards));
  merge_timer.counts(groups_total, r.matches.interruptions.size());
  return r;
}

}  // namespace coral::stream
