#pragma once

#include <cstddef>
#include <vector>

#include "coral/core/feed.hpp"
#include "coral/filter/groups.hpp"
#include "coral/joblog/log.hpp"
#include "coral/ras/log.hpp"

namespace coral::stream {

/// A processing stage in the streaming co-analysis: a consumer of the merged
/// job/RAS event stream (the CiFTS-style feed of §VII). Stages receive
/// events strictly time-ordered, with the EventFeed tie-break (job starts,
/// then RAS records, then job ends at the same timestamp), and must keep
/// only *windowed* state: anything older than the stage's coalescing/match
/// window is evicted or emitted downstream.
class Stage {
 public:
  virtual ~Stage() = default;

  virtual void on_job_start(TimePoint /*t*/, const joblog::JobRecord& /*job*/,
                            std::size_t /*job_index*/) {}
  virtual void on_ras(TimePoint /*t*/, const ras::RasEvent& /*event*/,
                      std::size_t /*event_index*/) {}
  virtual void on_job_end(TimePoint /*t*/, const joblog::JobRecord& /*job*/,
                          std::size_t /*job_index*/) {}

  /// End of stream: drain all buffered state.
  virtual void flush() {}
};

/// A non-representative member record of an in-flight event group. The
/// location is carried inline — as a Location::packed() key, which is what
/// every consumer (filter keys, partition-coverage tests) actually wants —
/// so the matcher needs no random access into the full log. Recover a full
/// Location with bgp::Location::from_packed.
struct GroupMember {
  std::size_t index = 0;  ///< index into the delivered fatal-record sequence
  std::uint32_t loc_key = 0;
};

/// An event group flowing between filter stages: the representative record
/// plus any absorbed re-reports. Equivalent to filter::EventGroup but
/// self-contained (it carries the rep's time/code/location key), so a stage
/// needs no side table of events. Singletons carry no heap allocation.
struct StreamGroup {
  std::size_t rep = 0;  ///< fatal-record index of the representative
  TimePoint rep_time;   ///< the independent event's time
  ras::ErrcodeId errcode = 0;
  std::uint32_t rep_key = 0;       ///< Location::packed() of the rep record
  std::vector<GroupMember> extra;  ///< members after the rep (often empty)

  std::size_t size() const { return 1 + extra.size(); }
};

/// Merge `src` into `dst`: src's rep and members become trailing members of
/// dst, in arrival order — exactly filter::merge_groups on the index lists.
void absorb(StreamGroup& dst, StreamGroup&& src);

/// Convert to the batch representation (member indices, rep first).
filter::EventGroup to_event_group(const StreamGroup& g);

/// Consumer of a stream of finalized groups, emitted in representative-time
/// order. `on_watermark(low)` promises that every future on_group() carries
/// rep_time >= low — stages use it to evict window state early (the matcher
/// needs it to bound its job-end buffer).
class GroupSink {
 public:
  virtual ~GroupSink() = default;
  virtual void on_group(StreamGroup&& g) = 0;
  virtual void on_watermark(TimePoint /*low*/) {}
  /// End of stream: drain buffered groups downstream.
  virtual void flush() {}
};

/// Collects emitted groups (terminal sink for tests and the shard executor).
class GroupBuffer : public GroupSink {
 public:
  void on_group(StreamGroup&& g) override { groups.push_back(std::move(g)); }
  std::vector<StreamGroup> groups;
};

/// Drives one or more stages from a RAS/job log pair via EventFeed,
/// numbering delivered RAS records 0,1,2,... in delivery order (with
/// `min_severity = Fatal` these are exactly the indices into
/// RasLog::fatal_events()). Indices keep counting across windowed replays,
/// so a warm-up replay followed by live windows sees one consistent
/// numbering.
class StageDriver {
 public:
  /// Both logs must stay alive for the driver's lifetime.
  StageDriver(const ras::RasLog& ras, const joblog::JobLog& jobs,
              ras::Severity min_severity = ras::Severity::Fatal);

  void attach(Stage& stage) { stages_.push_back(&stage); }

  /// Replay the whole pair and flush the stages. Returns delivered events.
  std::size_t replay();
  /// Replay [begin, end) without flushing (for incremental/live windows).
  std::size_t replay(TimePoint begin, TimePoint end);
  /// Flush all attached stages (end of stream).
  void flush();

 private:
  core::EventFeed feed_;
  std::vector<Stage*> stages_;
  const joblog::JobRecord* jobs_base_;
  std::size_t ras_index_ = 0;
};

}  // namespace coral::stream
