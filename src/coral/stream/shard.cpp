#include "coral/stream/shard.hpp"

#include <algorithm>

namespace coral::stream {

std::size_t ShardPlan::shard_of(TimePoint t) const {
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), t);
  return static_cast<std::size_t>(it - cuts.begin());
}

Usec quiesce_gap(Usec temporal_threshold, Usec spatial_threshold, Usec causality_window,
                 Usec match_window) {
  return std::max({temporal_threshold, spatial_threshold, causality_window,
                   2 * match_window + 1});
}

ShardPlan plan_shards(std::span<const TimePoint> fatal_times, int target_shards,
                      Usec quiesce) {
  ShardPlan plan;
  if (target_shards <= 1 || fatal_times.size() < 2) return plan;

  // Candidate cuts: midpoints of gaps strictly larger than the quiesce gap.
  std::vector<TimePoint> candidates;
  for (std::size_t i = 1; i < fatal_times.size(); ++i) {
    const Usec gap = fatal_times[i] - fatal_times[i - 1];
    if (gap > quiesce) candidates.push_back(fatal_times[i - 1] + gap / 2);
  }
  if (candidates.empty()) return plan;

  // Greedily pick the candidate nearest each ideal (evenly spaced) cut,
  // keeping cuts strictly increasing.
  const TimePoint first = fatal_times.front();
  const Usec span = fatal_times.back() - first;
  std::size_t next_candidate = 0;
  for (int k = 1; k < target_shards; ++k) {
    const TimePoint ideal =
        first + span * static_cast<Usec>(k) / static_cast<Usec>(target_shards);
    auto it = std::lower_bound(candidates.begin() + static_cast<std::ptrdiff_t>(next_candidate),
                               candidates.end(), ideal);
    // The nearest usable candidate is `it` or its predecessor (if unused).
    if (it != candidates.end() &&
        (it == candidates.begin() + static_cast<std::ptrdiff_t>(next_candidate) ||
         ideal - *(it - 1) > *it - ideal)) {
      // keep `it`
    } else if (it != candidates.begin() + static_cast<std::ptrdiff_t>(next_candidate)) {
      --it;
    }
    if (it == candidates.end()) break;
    plan.cuts.push_back(*it);
    next_candidate = static_cast<std::size_t>(it - candidates.begin()) + 1;
  }
  return plan;
}

}  // namespace coral::stream
