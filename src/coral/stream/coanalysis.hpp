#pragma once

#include <cstddef>

#include "coral/context.hpp"
#include "coral/core/matching.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/joblog/log.hpp"
#include "coral/ras/log.hpp"
#include "coral/stream/shard.hpp"

namespace coral::stream {

/// Configuration of the streaming front-end (filtering + matching).
struct FrontEndConfig {
  filter::FilterPipelineConfig filters;
  Usec match_window = 120 * kUsecPerSec;
  /// Target shard count for time-axis parallelism. Shards are cut only at
  /// quiesce gaps (see shard.hpp), so results are exact for any value; 1
  /// disables sharding. Shards run concurrently on the context's pool.
  int shards = 1;
};

/// The streaming front-end's output, assembled into the batch
/// representations so the downstream (batch) analyses run unchanged.
struct FrontEndResult {
  filter::FilterPipelineResult filtered;
  core::MatchResult matches;
  std::size_t shards_used = 1;
  /// Largest simultaneously buffered stage state (chains + pending groups +
  /// buffered job ends) across shards — bounded by the windows, not the log.
  std::size_t peak_stage_state = 0;
};

/// Run the filtering + matching methodology as streaming stages with
/// bounded windowed state, optionally sharded over the time axis on `pool`,
/// and merge deterministically. Produces byte-identical FilterPipelineResult
/// and MatchResult to the batch run_filter_pipeline + match_interruptions
/// pair (see DESIGN.md "Streaming architecture" for the argument).
///
/// Two phases when causality filtering is enabled, because causal-pair
/// support is a *global* min-support threshold: phase 1 streams FATAL
/// records through temporal -> spatial coalescing with a windowed pair
/// miner tapping the output (per-shard counts merge exactly — no
/// co-occurrence spans a quiesce cut); phase 2 streams the buffered
/// spatial groups through causality coalescing into the windowed matcher,
/// merge-walked against job terminations in end-time order.
///
/// The context's pool (if any) runs shards concurrently; its sink receives
/// the per-stage wall-time and record counts. Neither changes results.
FrontEndResult run_streaming_frontend(const ras::RasLog& ras, const joblog::JobLog& jobs,
                                      const FrontEndConfig& config,
                                      const Context& ctx = {});

}  // namespace coral::stream
