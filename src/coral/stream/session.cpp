#include "coral/stream/session.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"

namespace coral::stream {

namespace {

constexpr std::size_t kFileHeaderBytes = 8;  // magic[4] + u32 version

}  // namespace

/// One log feed's ingest state. The queue is the only part touched by
/// feed(); everything from the assembler down is owned by the drain lock.
/// `queued`/`assembling` shadow the backlog as atomics so snapshot() never
/// needs either lock.
struct Session::SourceState {
  SourceState(Source which, ParseMode mode, const char* label)
      : kind(which), what(label), frames(mode, &frame_damage, label) {}

  const Source kind;
  const char* what;

  std::mutex mu;  ///< guards queue
  std::deque<std::string> queue;

  std::atomic<std::size_t> queued{0};      ///< bytes in queue
  std::atomic<std::size_t> assembling{0};  ///< bytes buffered in the assembler

  // --- drain-lock territory ---
  std::string header;        ///< the 8-byte file header, accumulated
  bool header_checked = false;
  IngestReport frame_damage; ///< framing-layer samples (adopted at finish)
  bin::FrameAssembler frames;

  std::size_t backlog() const { return queued.load() + assembling.load(); }
};

Session::Session(std::string name, SessionConfig config, const Context& ctx)
    : name_(std::move(name)), config_(std::move(config)), ctx_(ctx) {
  ras_ = std::make_unique<SourceState>(Source::Ras, config_.mode, "binary RAS log");
  jobs_ = std::make_unique<SourceState>(Source::Jobs, config_.mode, "binary job log");
  ras_dec_ = std::make_unique<ras::RasStreamDecoder>(ctx_.catalog(), config_.mode,
                                                     ctx_.machine());
  job_dec_ = std::make_unique<joblog::JobStreamDecoder>(config_.mode, ctx_.machine());
  if (config_.rules != nullptr) {
    predictor_ = std::make_unique<predict::Predictor>(*config_.rules, ctx_.machine(),
                                                      ctx_.obs());
  }
}

Session::~Session() = default;

Session::SourceState& Session::state(Source src) {
  return src == Source::Ras ? *ras_ : *jobs_;
}

Admission Session::feed(Source src, std::string_view bytes) {
  if (finalized_.load(std::memory_order_acquire)) return Admission::Rejected;
  if (bytes.empty()) return Admission::Accepted;
  SourceState& st = state(src);
  std::lock_guard<std::mutex> lock(st.mu);
  // An empty backlog always admits, even a chunk larger than the quota:
  // the quota bounds backlog *growth*, and refusing an oversized chunk
  // outright would wedge a lossless (Reject + retry) feeder forever.
  if (st.backlog() != 0 && st.backlog() + bytes.size() > config_.queue_bytes) {
    if (config_.overflow == SessionConfig::Overflow::Reject) return Admission::Rejected;
    bytes_shed_.fetch_add(bytes.size(), std::memory_order_relaxed);
    chunks_shed_.fetch_add(1, std::memory_order_relaxed);
    CORAL_OBS_COUNT(ctx_.obs(), "session.bytes.shed", bytes.size());
    return Admission::Shed;
  }
  st.queue.emplace_back(bytes);
  st.queued.fetch_add(bytes.size(), std::memory_order_relaxed);
  bytes_accepted_.fetch_add(bytes.size(), std::memory_order_relaxed);
  CORAL_OBS_COUNT(ctx_.obs(), "session.bytes.accepted", bytes.size());
  return Admission::Accepted;
}

std::size_t Session::pump_locked(SourceState& st) {
  // Take the queued chunks in one swap; decode happens outside st.mu so
  // feeders are never blocked behind record decoding.
  std::deque<std::string> chunks;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    chunks.swap(st.queue);
  }
  if (chunks.empty()) return 0;

  std::size_t taken = 0;
  for (std::string& chunk : chunks) {
    taken += chunk.size();
    std::string_view rest = chunk;
    if (st.header.size() < kFileHeaderBytes) {
      const std::size_t want = kFileHeaderBytes - st.header.size();
      const std::size_t got = std::min(want, rest.size());
      st.header.append(rest.data(), got);
      rest.remove_prefix(got);
    }
    if (!st.header_checked && st.header.size() == kFileHeaderBytes) {
      st.header_checked = true;
      // Same gate the offline readers apply to the 8-byte file header:
      // strict insists on magic + version, lenient tolerates damage (the
      // framed blocks are self-locating).
      if (config_.mode == ParseMode::Strict) {
        const bool is_ras = st.kind == Source::Ras;
        const char* magic = is_ras ? ras::kRasMagic : joblog::kJobMagic;
        const char* logname = is_ras ? "RAS" : "job";
        if (std::memcmp(st.header.data(), magic, 4) != 0) {
          throw ParseError(std::string("not a binary ") + logname + " log (bad magic)");
        }
        std::uint32_t version = 0;
        std::memcpy(&version, st.header.data() + 4, sizeof version);
        // v2 and v3 block tags are disjoint, so one decoder handles both
        // and the session accepts either header.
        const bool known = is_ras ? (version == ras::kRasVersion ||
                                     version == ras::kRasVersion3)
                                  : (version == joblog::kJobVersion ||
                                     version == joblog::kJobVersion3);
        if (!known) {
          throw ParseError(std::string("unsupported binary ") + logname +
                           " log version " + std::to_string(version));
        }
      }
    }
    if (!rest.empty()) st.frames.push(rest);
  }
  st.queued.fetch_sub(taken, std::memory_order_relaxed);

  std::string payload;
  while (st.frames.next(payload)) {
    const std::uint64_t at = st.frames.block_offset() + bin::kBlockHeaderBytes;
    if (st.kind == Source::Ras) {
      ras_dec_->on_payload(payload, at);
      ras_records_.store(ras_dec_->records_decoded(), std::memory_order_relaxed);
    } else {
      job_dec_->on_payload(payload, at);
      job_records_.store(job_dec_->records_decoded(), std::memory_order_relaxed);
    }
  }
  const std::size_t buffered = st.frames.buffered();
  const std::size_t consumed =
      taken + st.assembling.exchange(buffered, std::memory_order_relaxed) - buffered;
  bytes_decoded_.fetch_add(consumed, std::memory_order_relaxed);
  CORAL_OBS_COUNT(ctx_.obs(), "session.bytes.decoded", consumed);
  if (st.kind == Source::Ras) predict_new_records_locked();
  return consumed;
}

void Session::predict_new_records_locked() {
  if (!predictor_) return;
  // The decoder's live tap is append-only between pumps, and payloads arrive
  // in file order, so cursoring over it replays exactly the record sequence
  // an offline predict::replay of the finalized log would see — the parity
  // the online/offline differential test pins.
  const std::vector<ras::RasEvent>& events = ras_dec_->events_so_far();
  for (; predicted_ < events.size(); ++predicted_) {
    predictor_->on_record(events[predicted_]);
  }
  predictions_.store(predictor_->issued(), std::memory_order_relaxed);
}

std::size_t Session::pump() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  return pump_locked(*ras_) + pump_locked(*jobs_);
}

void Session::flush() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  // A concurrent feeder can race more bytes in; each pass drains what was
  // queued when it started, and the loop exits once a pass finds nothing.
  while (pump_locked(*ras_) + pump_locked(*jobs_) != 0) {
  }
}

SessionStats Session::snapshot() const {
  SessionStats s;
  s.bytes_accepted = bytes_accepted_.load(std::memory_order_relaxed);
  s.bytes_decoded = bytes_decoded_.load(std::memory_order_relaxed);
  s.bytes_shed = bytes_shed_.load(std::memory_order_relaxed);
  s.chunks_shed = chunks_shed_.load(std::memory_order_relaxed);
  s.backlog_bytes = ras_->backlog() + jobs_->backlog();
  s.ras_records = ras_records_.load(std::memory_order_relaxed);
  s.job_records = job_records_.load(std::memory_order_relaxed);
  s.predictions = predictions_.load(std::memory_order_relaxed);
  s.finalized = finalized_.load(std::memory_order_acquire);
  return s;
}

SessionResult Session::finalize() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (finalized_.exchange(true, std::memory_order_acq_rel)) {
    throw InvalidArgument("session '" + name_ + "' already finalized");
  }
  // Drain everything accepted before the finalize cut, then declare
  // end-of-stream so the assemblers run BlockReader's truncation endgame.
  while (pump_locked(*ras_) + pump_locked(*jobs_) != 0) {
  }
  SessionResult out;
  for (SourceState* st : {ras_.get(), jobs_.get()}) {
    st->frames.finish();
    std::string payload;
    while (st->frames.next(payload)) {
      const std::uint64_t at = st->frames.block_offset() + bin::kBlockHeaderBytes;
      if (st->kind == Source::Ras) {
        ras_dec_->on_payload(payload, at);
      } else {
        job_dec_->on_payload(payload, at);
      }
    }
    st->assembling.store(st->frames.buffered(), std::memory_order_relaxed);
    if (config_.mode == ParseMode::Strict && !st->header_checked) {
      // Fewer than 8 bytes ever arrived: the offline readers' "bad magic".
      throw ParseError(std::string("not a binary ") +
                       (st->kind == Source::Ras ? "RAS" : "job") + " log (bad magic)");
    }
  }
  // Feed the predictor the tail decoded by the truncation endgame before
  // finish() moves the events out from under the live tap.
  predict_new_records_locked();
  if (predictor_) out.predictions = predictor_->predictions();
  out.ras = ras_dec_->finish(out.ras_report, ras_->frame_damage);
  out.jobs = job_dec_->finish(out.jobs_report, jobs_->frame_damage);
  ras_records_.store(out.ras.size(), std::memory_order_relaxed);
  job_records_.store(out.jobs.size(), std::memory_order_relaxed);
  // Same ingest-health reporting the offline readers emit, so a daemon
  // tenant's malformed ledgers land on /metrics like any batch run's.
  out.ras_report.report_malformed(ctx_.sink(), "ingest.ras_binary");
  out.jobs_report.report_malformed(ctx_.sink(), "ingest.job_binary");
  out.analysis = core::run_coanalysis(out.ras, out.jobs, config_.analysis, ctx_);
  return out;
}

}  // namespace coral::stream
