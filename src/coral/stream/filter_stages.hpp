#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coral/filter/causality.hpp"
#include "coral/filter/spatial.hpp"
#include "coral/filter/temporal.hpp"
#include "coral/stream/stage.hpp"

namespace coral::stream {

/// Streaming form of the temporal/spatial renewing-window merge: open chains
/// live in a deque in creation order; a chain is final once the input clock
/// outruns its renewing window (inputs arrive in representative-time order,
/// so nothing later can merge into it). Finalized chains are emitted from
/// the *front* only, which keeps emission in creation order — byte-identical
/// to the batch filters' output vectors — while later closed chains wait
/// behind an open front. Buffered state is therefore bounded by how many
/// chains fit in one coalescing window, not by the log length.
template <typename Key, typename KeyOf>
class WindowedCoalescer : public GroupSink {
 public:
  WindowedCoalescer(Usec threshold, GroupSink* out) : threshold_(threshold), out_(out) {}

  void on_group(StreamGroup&& g) override {
    ++in_count_;
    const TimePoint now = g.rep_time;
    emit_ready(now);
    const Key key = key_of_(g);
    const auto it = open_.find(key);
    if (it != open_.end() && it->second >= first_seq_) {
      Chain& c = chains_[it->second - first_seq_];
      if (now - c.last <= threshold_) {
        c.last = now;  // the chain renews its window
        absorb(c.group, std::move(g));
        forward_watermark(now);
        return;
      }
      it->second = next_seq_;  // window expired: a fresh chain takes the key
    } else if (it != open_.end()) {
      it->second = next_seq_;  // previous chain already emitted
    } else {
      open_.emplace(key, next_seq_);
    }
    chains_.push_back(Chain{std::move(g), now});
    ++next_seq_;
    if (chains_.size() > peak_chains_) peak_chains_ = chains_.size();
    forward_watermark(now);
  }

  void on_watermark(TimePoint low) override {
    emit_ready(low);
    forward_watermark(low);
  }

  void flush() override {
    while (!chains_.empty()) emit_front();
    out_->flush();
  }

  std::size_t in_count() const { return in_count_; }
  std::size_t out_count() const { return out_count_; }
  /// Largest number of simultaneously buffered chains (window-bounded).
  std::size_t peak_chains() const { return peak_chains_; }

 private:
  struct Chain {
    StreamGroup group;
    TimePoint last;  ///< last absorbed record time (the renewing window)
  };

  void emit_front() {
    out_->on_group(std::move(chains_.front().group));
    chains_.pop_front();
    ++first_seq_;
    ++out_count_;
  }

  void emit_ready(TimePoint now) {
    while (!chains_.empty() && now - chains_.front().last > threshold_) emit_front();
  }

  /// Every future emission has rep_time >= the front chain's rep (chains are
  /// created in rep order and new inputs are no earlier than `now`).
  void forward_watermark(TimePoint now) {
    out_->on_watermark(chains_.empty() ? now : chains_.front().group.rep_time);
  }

  Usec threshold_;
  GroupSink* out_;
  KeyOf key_of_{};
  std::deque<Chain> chains_;
  /// key -> chain seq; entries referencing emitted chains (seq < first_seq_)
  /// are stale and treated as absent, so the table never needs scrubbing.
  /// Its size is bounded by the key alphabet (codes x locations), not the
  /// log length.
  std::unordered_map<Key, std::size_t> open_;
  std::size_t first_seq_ = 0;
  std::size_t next_seq_ = 0;
  std::size_t in_count_ = 0;
  std::size_t out_count_ = 0;
  std::size_t peak_chains_ = 0;
};

struct TemporalKey {
  std::uint64_t operator()(const StreamGroup& g) const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.errcode)) << 32) |
           g.rep_key;
  }
};

struct SpatialKey {
  ras::ErrcodeId operator()(const StreamGroup& g) const { return g.errcode; }
};

/// Same ERRCODE at the same LOCATION within the renewing threshold.
using TemporalCoalescer = WindowedCoalescer<std::uint64_t, TemporalKey>;
/// Same ERRCODE anywhere within the renewing threshold.
using SpatialCoalescer = WindowedCoalescer<ras::ErrcodeId, SpatialKey>;

/// Streaming causal-pair miner: counts co-occurrences of distinct codes
/// among group reps within the window, over a sliding deque of recent reps.
/// Counts are mergeable across shards (no co-occurrence spans a shard cut,
/// see shard.hpp), and accept() reproduces mine_causal_pairs exactly.
class PairMiner : public GroupSink {
 public:
  using Counts = std::map<std::pair<ras::ErrcodeId, ras::ErrcodeId>, int>;

  /// Forwards groups to `out` when given (pass-through mining).
  explicit PairMiner(Usec window, GroupSink* out = nullptr)
      : window_span_(window), out_(out) {}

  void on_group(StreamGroup&& g) override {
    evict(g.rep_time);
    for (const Seen& s : window_) {
      if (s.code == g.errcode) continue;
      const auto key = s.code < g.errcode ? std::pair{s.code, g.errcode}
                                          : std::pair{g.errcode, s.code};
      counts_[key] += 1;
    }
    window_.push_back({g.rep_time, g.errcode});
    if (window_.size() > peak_window_) peak_window_ = window_.size();
    if (out_ != nullptr) out_->on_group(std::move(g));
  }

  void on_watermark(TimePoint low) override {
    evict(low);
    if (out_ != nullptr) out_->on_watermark(low);
  }

  void flush() override {
    window_.clear();
    if (out_ != nullptr) out_->flush();
  }

  const Counts& counts() const { return counts_; }
  Counts take_counts() { return std::move(counts_); }
  std::size_t peak_window() const { return peak_window_; }

  static void merge_counts(Counts& into, const Counts& from) {
    for (const auto& [key, n] : from) into[key] += n;
  }

  /// Pairs meeting min_support, in code order — identical to the tail of
  /// filter::mine_causal_pairs.
  static std::vector<filter::CausalPair> accept(const Counts& counts, int min_support) {
    std::vector<filter::CausalPair> pairs;
    for (const auto& [key, n] : counts) {
      if (n >= min_support) pairs.push_back(key);
    }
    return pairs;
  }

 private:
  struct Seen {
    TimePoint time;
    ras::ErrcodeId code;
  };

  void evict(TimePoint now) {
    while (!window_.empty() && now - window_.front().time > window_span_) window_.pop_front();
  }

  Usec window_span_;
  GroupSink* out_;
  std::deque<Seen> window_;
  Counts counts_;
  std::size_t peak_window_ = 0;
};

/// Streaming causality merge: a group whose code is causally paired with an
/// open leader group within the window is absorbed into the most recent such
/// leader (ties broken by ascending partner code, exactly as the batch
/// filter iterates its partner set). Leader windows do *not* renew — a
/// chain is final once the input clock passes rep_time + window, so the
/// deque holds at most one window's worth of leaders.
class CausalityCoalescer : public GroupSink {
 public:
  CausalityCoalescer(Usec window, std::span<const filter::CausalPair> pairs, GroupSink* out)
      : window_span_(window), out_(out) {
    for (const auto& [a, b] : pairs) {
      partner_[a].insert(b);
      partner_[b].insert(a);
    }
  }

  void on_group(StreamGroup&& g) override;
  void on_watermark(TimePoint low) override;
  void flush() override;

  std::size_t in_count() const { return in_count_; }
  std::size_t out_count() const { return out_count_; }
  std::size_t peak_chains() const { return peak_chains_; }

 private:
  void emit_front();
  void emit_ready(TimePoint now);
  void forward_watermark(TimePoint now);

  Usec window_span_;
  GroupSink* out_;
  std::unordered_map<ras::ErrcodeId, std::set<ras::ErrcodeId>> partner_;
  std::deque<StreamGroup> chains_;  ///< open leaders, creation order
  std::unordered_map<ras::ErrcodeId, std::size_t> open_;  ///< code -> chain seq
  std::size_t first_seq_ = 0;
  std::size_t next_seq_ = 0;
  std::size_t in_count_ = 0;
  std::size_t out_count_ = 0;
  std::size_t peak_chains_ = 0;
};

/// The composed streaming filter front-end: FATAL records in, coalesced
/// event groups out. Job events advance the stage clocks (earlier eviction,
/// smaller buffers) but carry no data through this stage.
///
///   RAS --> temporal --> spatial --> [pair miner] --> [causality] --> out
///
/// With `mine_pairs` set, a PairMiner taps the spatial output (counts
/// readable after flush — the warm-up pass of a two-phase run). With
/// `pairs` non-empty, the causality coalescer merges follower groups using
/// those previously mined pairs (the live pass).
class StreamingFilter : public Stage {
 public:
  struct Options {
    filter::TemporalFilterConfig temporal;
    filter::SpatialFilterConfig spatial;
    filter::CausalityFilterConfig causality;
    bool mine_pairs = false;
    std::vector<filter::CausalPair> pairs;
  };

  StreamingFilter(Options options, GroupSink& out);

  void on_ras(TimePoint t, const ras::RasEvent& event, std::size_t event_index) override;
  /// Columnar entry point: feed a fatal record without materializing a
  /// RasEvent (the coanalysis driver reads straight from ras::FatalColumns).
  void on_fatal(TimePoint t, ras::ErrcodeId errcode, std::uint32_t loc_key,
                std::size_t event_index);
  void on_job_start(TimePoint t, const joblog::JobRecord& job, std::size_t job_index) override;
  void on_job_end(TimePoint t, const joblog::JobRecord& job, std::size_t job_index) override;
  void flush() override;

  std::size_t raw_count() const { return raw_count_; }
  const TemporalCoalescer& temporal() const { return *temporal_; }
  const SpatialCoalescer& spatial() const { return *spatial_; }
  const PairMiner* miner() const { return miner_.get(); }
  PairMiner* miner() { return miner_.get(); }
  const CausalityCoalescer* causality() const { return causality_.get(); }

  /// Largest simultaneously buffered group count across all stages — the
  /// window-bounded working set of the filter.
  std::size_t peak_buffered() const;

 private:
  Options options_;
  std::unique_ptr<CausalityCoalescer> causality_;
  std::unique_ptr<PairMiner> miner_;
  std::unique_ptr<SpatialCoalescer> spatial_;
  std::unique_ptr<TemporalCoalescer> temporal_;
  std::size_t raw_count_ = 0;
};

}  // namespace coral::stream
