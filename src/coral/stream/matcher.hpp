#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "coral/machine/codec.hpp"
#include "coral/stream/stage.hpp"

namespace coral::stream {

/// Streaming RAS<->job matcher: a sliding +/-window join between finalized
/// event groups (from the filter chain, via the GroupSink side) and job
/// terminations (from the event stream, via the Stage side), keyed by
/// partition/location overlap.
///
/// Buffers are window-bounded on both sides:
///  - a pending group resolves once the event clock passes rep_time +
///    window (every job end that could match has then been seen);
///  - a buffered job end is evicted once the *group low-watermark* (the
///    earliest representative time any future group can carry, propagated
///    by the upstream stages via on_watermark) passes end_time + window.
///
/// Matches are emitted in group order with ascending job indices — exactly
/// the per-group vectors of the batch match_interruptions phase 1.
class StreamingMatcher : public Stage, public GroupSink {
 public:
  struct GroupMatch {
    StreamGroup group;
    std::vector<std::size_t> jobs;  ///< interrupted job indices, ascending
  };
  using Handler = std::function<void(GroupMatch&&)>;

  /// `codec` decodes the groups' packed loc_keys; the default is the Blue
  /// Gene family codec. Pass `machine.codec()` when matching another model's
  /// logs.
  StreamingMatcher(Usec window, Handler on_match, machine::LocCodec codec = {})
      : window_(window), on_match_(std::move(on_match)), codec_(codec) {}

  // Stage side: the merged event stream.
  void on_job_start(TimePoint t, const joblog::JobRecord& job, std::size_t job_index) override;
  void on_ras(TimePoint t, const ras::RasEvent& event, std::size_t event_index) override;
  void on_job_end(TimePoint t, const joblog::JobRecord& job, std::size_t job_index) override;

  // GroupSink side: finalized groups from the filter chain.
  void on_group(StreamGroup&& g) override;
  void on_watermark(TimePoint low) override;

  /// End of stream (both roles): resolve every pending group.
  void flush() override;

  std::size_t groups_out() const { return groups_out_; }
  /// Largest simultaneously buffered state (job ends + pending groups).
  std::size_t peak_buffered() const { return peak_buffered_; }

 private:
  struct JobEnd {
    TimePoint end;
    TimePoint start;
    std::size_t job;
    bgp::Partition partition;
  };

  void advance(TimePoint t);
  void resolve();
  void emit_front();
  void evict();
  void note_peak() {
    const std::size_t s = ends_.size() + pending_.size();
    if (s > peak_buffered_) peak_buffered_ = s;
  }

  Usec window_;
  Handler on_match_;
  machine::LocCodec codec_;
  std::deque<JobEnd> ends_;         ///< sorted by end time (arrival order)
  std::deque<StreamGroup> pending_; ///< groups awaiting resolution, in order
  TimePoint watermark_{std::numeric_limits<Usec>::min()};
  TimePoint group_low_{std::numeric_limits<Usec>::min()};
  bool group_low_known_ = false;
  std::size_t groups_out_ = 0;
  std::size_t peak_buffered_ = 0;
};

}  // namespace coral::stream
