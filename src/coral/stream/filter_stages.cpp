#include "coral/stream/filter_stages.hpp"

namespace coral::stream {

void CausalityCoalescer::on_group(StreamGroup&& g) {
  ++in_count_;
  const TimePoint now = g.rep_time;
  emit_ready(now);

  if (const auto pit = partner_.find(g.errcode); pit != partner_.end()) {
    // Merge into the most recent partner leader within the window. Iterating
    // the partner set ascending with a strict `>` comparison reproduces the
    // batch filter's tie-break (first partner code wins equal times).
    std::size_t best_seq = 0;
    TimePoint best_time;
    bool found = false;
    for (ras::ErrcodeId p : pit->second) {
      const auto oit = open_.find(p);
      if (oit == open_.end() || oit->second < first_seq_) continue;
      const StreamGroup& leader = chains_[oit->second - first_seq_];
      if (now - leader.rep_time > window_span_) continue;
      if (!found || leader.rep_time > best_time) {
        found = true;
        best_time = leader.rep_time;
        best_seq = oit->second;
      }
    }
    if (found) {
      absorb(chains_[best_seq - first_seq_], std::move(g));
      forward_watermark(now);
      return;
    }
  }
  // Leaders do not renew: `open_` tracks the latest unmerged group per code,
  // exactly the batch filter's `open` map.
  auto [it, inserted] = open_.try_emplace(g.errcode, next_seq_);
  if (!inserted) it->second = next_seq_;
  chains_.push_back(std::move(g));
  ++next_seq_;
  if (chains_.size() > peak_chains_) peak_chains_ = chains_.size();
  forward_watermark(now);
}

void CausalityCoalescer::on_watermark(TimePoint low) {
  emit_ready(low);
  forward_watermark(low);
}

void CausalityCoalescer::flush() {
  while (!chains_.empty()) emit_front();
  out_->flush();
}

void CausalityCoalescer::emit_front() {
  out_->on_group(std::move(chains_.front()));
  chains_.pop_front();
  ++first_seq_;
  ++out_count_;
}

void CausalityCoalescer::emit_ready(TimePoint now) {
  // A leader is final once `now` passes rep_time + window: later groups fail
  // the merge window against it. Emit from the front only (creation order).
  while (!chains_.empty() && now - chains_.front().rep_time > window_span_) emit_front();
}

void CausalityCoalescer::forward_watermark(TimePoint now) {
  out_->on_watermark(chains_.empty() ? now : chains_.front().rep_time);
}

StreamingFilter::StreamingFilter(Options options, GroupSink& out)
    : options_(std::move(options)) {
  // Wire the chain tail-first so each stage holds a stable pointer to the
  // next.
  GroupSink* next = &out;
  if (!options_.pairs.empty()) {
    causality_ = std::make_unique<CausalityCoalescer>(options_.causality.window,
                                                      options_.pairs, next);
    next = causality_.get();
  }
  if (options_.mine_pairs) {
    miner_ = std::make_unique<PairMiner>(options_.causality.window, next);
    next = miner_.get();
  }
  spatial_ = std::make_unique<SpatialCoalescer>(options_.spatial.threshold, next);
  temporal_ = std::make_unique<TemporalCoalescer>(options_.temporal.threshold, spatial_.get());
}

void StreamingFilter::on_ras(TimePoint t, const ras::RasEvent& event,
                             std::size_t event_index) {
  (void)t;
  on_fatal(event.event_time, event.errcode, event.location.packed(), event_index);
}

void StreamingFilter::on_fatal(TimePoint t, ras::ErrcodeId errcode, std::uint32_t loc_key,
                               std::size_t event_index) {
  ++raw_count_;
  StreamGroup g;
  g.rep = event_index;
  g.rep_time = t;
  g.errcode = errcode;
  g.rep_key = loc_key;
  temporal_->on_group(std::move(g));
}

void StreamingFilter::on_job_start(TimePoint t, const joblog::JobRecord&, std::size_t) {
  temporal_->on_watermark(t);
}

void StreamingFilter::on_job_end(TimePoint t, const joblog::JobRecord&, std::size_t) {
  temporal_->on_watermark(t);
}

void StreamingFilter::flush() { temporal_->flush(); }

std::size_t StreamingFilter::peak_buffered() const {
  std::size_t peak = temporal_->peak_chains() + spatial_->peak_chains();
  if (miner_) peak += miner_->peak_window();
  if (causality_) peak += causality_->peak_chains();
  return peak;
}

}  // namespace coral::stream
