#pragma once

#include <span>
#include <vector>

#include "coral/common/time.hpp"

namespace coral::stream {

/// A partition of the time axis into shards for parallel streaming runs.
/// Shard i covers [cuts[i-1], cuts[i]) (with open ends at the extremes).
struct ShardPlan {
  std::vector<TimePoint> cuts;  ///< ascending, strictly inside quiesce gaps

  std::size_t shard_count() const { return cuts.size() + 1; }
  /// Shard index owning time `t`.
  std::size_t shard_of(TimePoint t) const;
};

/// The quiesce gap that makes cutting *exact*: a cut placed at the midpoint
/// of a fatal-record gap strictly larger than this can be crossed by no
/// temporal/spatial/causality chain, no mined co-occurrence, and no RAS<->
/// job match window — so per-shard streaming results concatenate to the
/// batch result bit-for-bit. The `2*match + 1` term ensures the *floored*
/// half-gap on either side of a cut still exceeds the match window.
Usec quiesce_gap(Usec temporal_threshold, Usec spatial_threshold, Usec causality_window,
                 Usec match_window);

/// Choose up to `target_shards - 1` cuts at midpoints of qualifying gaps in
/// the (sorted) fatal-record times, as close to an even time split as the
/// gaps allow. Fewer cuts (possibly none) are returned when the log has too
/// few quiesce gaps — correctness never depends on reaching the target.
ShardPlan plan_shards(std::span<const TimePoint> fatal_times, int target_shards,
                      Usec quiesce);

}  // namespace coral::stream
