#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "coral/context.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/joblog/binary_stream.hpp"
#include "coral/predict/predictor.hpp"
#include "coral/ras/binary_stream.hpp"

namespace coral::stream {

/// Which of a tenant's two log feeds a chunk of bytes belongs to.
enum class Source { Ras, Jobs };

/// What happened to a feed() call at the admission gate.
enum class Admission {
  Accepted,  ///< queued; will be decoded by the next pump()
  Rejected,  ///< over quota, nothing enqueued — back off and retry (lossless)
  Shed,      ///< over quota, dropped *with accounting* (SessionConfig::Overflow::Shed)
};

/// Per-tenant resource policy and analysis configuration.
struct SessionConfig {
  ParseMode mode = ParseMode::Lenient;
  /// Ingest-queue quota per source, in bytes of undecoded backlog. A feed
  /// that would push the backlog past this is rejected or shed.
  std::size_t queue_bytes = std::size_t{4} << 20;
  /// What the admission gate does with an over-quota feed. Reject is the
  /// lossless default (the wire server turns it into backpressure by
  /// pumping inline); Shed keeps the tenant live at the cost of dropped
  /// bytes, accounted in SessionStats and, downstream, in the BinaryFrame
  /// ledger (dropped bytes read as frame damage).
  enum class Overflow { Reject, Shed } overflow = Overflow::Reject;
  core::CoAnalysisConfig analysis;
  /// Online failure prediction: when set, every decoded RAS record is fed
  /// through a predict::Predictor as it is pumped, live predictions count in
  /// SessionStats/obs ("predict.*" counters, lead-time histogram) and the
  /// full prediction list rides out in SessionResult. Non-owning; must
  /// outlive the session. Null (the default) changes nothing.
  const predict::RuleTable* rules = nullptr;
};

/// Live counters, readable mid-run from any thread without stopping ingest
/// (the /metrics liveness guarantee rides on these being plain atomics).
struct SessionStats {
  std::uint64_t bytes_accepted = 0;  ///< admitted through feed()
  std::uint64_t bytes_decoded = 0;   ///< consumed from the backlog by pump()
  std::uint64_t bytes_shed = 0;      ///< dropped at the admission gate
  std::uint64_t chunks_shed = 0;
  std::uint64_t backlog_bytes = 0;   ///< queued + assembler-buffered, both sources
  std::uint64_t ras_records = 0;     ///< decoded so far
  std::uint64_t job_records = 0;
  std::uint64_t predictions = 0;     ///< issued by the online predictor
  bool finalized = false;
};

/// A finalized session: the same CoAnalysisResult and ingest ledgers the
/// offline pipeline produces for the identical log bytes.
struct SessionResult {
  core::CoAnalysisResult analysis;
  /// The decoded logs the analysis ran on — what a parity check diffs
  /// record-for-record against an offline read of the same bytes.
  ras::RasLog ras;
  joblog::JobLog jobs;
  IngestReport ras_report;
  IngestReport jobs_report;
  /// Online predictions, in issue order (empty without SessionConfig::rules).
  /// Byte-identical to predict::replay over the decoded log, for any feed
  /// chunking — the live path is differential-tested against that replay.
  std::vector<predict::Prediction> predictions;
};

/// One tenant's resident co-analysis engine: an explicit feed()/flush()/
/// snapshot()/finalize() lifecycle over the binary-v2 log formats.
///
/// feed() enqueues raw file bytes (any chunking — a socket's recv sizes, a
/// tail -f, whole files) behind a bounded admission gate; pump() drains the
/// backlog through the same FrameAssembler + stream decoders the offline
/// readers are built on, so finalize() is byte-identical to read_binary +
/// run_coanalysis over the concatenated bytes — including lenient-mode
/// damage accounting. That equivalence holds for *any* interleaving of
/// feeds across sources and tenants, because each source's bytes arrive in
/// order and nothing else is shared.
///
/// Threading: feed() and snapshot() are safe from any thread; pump(),
/// flush() and finalize() serialize on an internal drain lock (concurrent
/// callers queue up harmlessly). One session's pump never blocks another's.
class Session {
 public:
  /// `ctx` supplies catalog, machine, pool and obs; the session keeps a
  /// copy. Per-tenant live counters are published to ctx.obs() (if any)
  /// under "session.*" names.
  Session(std::string name, SessionConfig config, const Context& ctx);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const { return name_; }
  const Context& context() const { return ctx_; }

  /// Offer bytes to one source's ingest queue. Never blocks; over-quota
  /// feeds are Rejected (retry after a pump) or Shed per the config.
  /// Feeding after finalize() is Rejected.
  Admission feed(Source src, std::string_view bytes);

  /// Drain queued bytes into the decoders. Returns the number of backlog
  /// bytes consumed (0 = nothing pending). Call from a worker loop, or
  /// inline after a Rejected feed to make room.
  std::size_t pump();

  /// pump() until the backlog is empty.
  void flush();

  /// Live counters; callable mid-run from any thread.
  SessionStats snapshot() const;

  /// Declare both byte streams complete, run end-of-stream accounting and
  /// the full co-analysis. The one-shot end of the lifecycle: further
  /// feeds are rejected. Strict-mode format errors surface here (and from
  /// pump(), which decodes eagerly).
  SessionResult finalize();

 private:
  struct SourceState;
  SourceState& state(Source src);
  /// Drain one source's queue into its assembler + decoder (drain_mu_ held).
  std::size_t pump_locked(SourceState& st);
  /// Feed RAS records decoded since the last call to the online predictor
  /// (drain_mu_ held; no-op without rules).
  void predict_new_records_locked();

  const std::string name_;
  const SessionConfig config_;
  Context ctx_;

  std::unique_ptr<SourceState> ras_;
  std::unique_ptr<SourceState> jobs_;
  std::unique_ptr<ras::RasStreamDecoder> ras_dec_;
  std::unique_ptr<joblog::JobStreamDecoder> job_dec_;
  std::unique_ptr<predict::Predictor> predictor_;  ///< null without rules
  std::size_t predicted_ = 0;  ///< decoded RAS records already fed (drain_mu_)

  std::mutex drain_mu_;  ///< serializes pump/flush/finalize decode work
  std::atomic<bool> finalized_{false};

  std::atomic<std::uint64_t> bytes_accepted_{0};
  std::atomic<std::uint64_t> bytes_decoded_{0};
  std::atomic<std::uint64_t> bytes_shed_{0};
  std::atomic<std::uint64_t> chunks_shed_{0};
  std::atomic<std::uint64_t> ras_records_{0};
  std::atomic<std::uint64_t> job_records_{0};
  std::atomic<std::uint64_t> predictions_{0};
};

}  // namespace coral::stream
