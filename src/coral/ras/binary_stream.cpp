#include "coral/ras/binary_stream.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "coral/common/error.hpp"
#include "coral/common/lz.hpp"
#include "coral/common/varint.hpp"
#include "coral/machine/model.hpp"

namespace coral::ras {

RasDictionary parse_ras_dictionary(bin::PayloadCursor& cur, const Catalog& catalog,
                                   ParseMode mode) {
  RasDictionary dict;
  const auto size = cur.get<std::uint32_t>();
  if (size > 1'000'000) throw ParseError("implausible dictionary size");
  dict.remap.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto len = cur.get<std::uint16_t>();
    const std::string name = cur.get_string(len);
    const auto id = catalog.find(name);
    if (!id) {
      if (mode == ParseMode::Strict) {
        throw ParseError("unknown errcode in binary RAS log: '" + name + "'");
      }
      dict.all_mapped = false;
    }
    dict.remap.push_back(id);
  }
  dict.total_records = cur.get<std::uint64_t>();
  return dict;
}

namespace {

// Validate and append one fixed-size record. Shared by the contiguous fast
// path and the bounds-checked slow path so their accounting cannot drift.
void decode_one(const PackedRecord& rec, std::uint64_t rec_offset,
                const RasDictionary& dict, ParseMode mode,
                const machine::MachineModel& machine, IngestReport& rep,
                std::vector<RasEvent>& events, const bin::ZoneFilter* filter) {
  if (rec.dict_index >= dict.remap.size()) {
    if (mode == ParseMode::Strict) throw ParseError("bad dictionary index");
    rep.add_malformed(IngestReason::BadRecord, rec_offset, "",
                      "dictionary index out of range");
    return;
  }
  if (!dict.remap[rec.dict_index]) {
    rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                      "errcode name not in target catalog");
    return;
  }
  if (rec.severity > static_cast<std::uint8_t>(Severity::Fatal)) {
    if (mode == ParseMode::Strict) {
      throw ParseError("bad severity in binary RAS log at byte offset " +
                       std::to_string(rec_offset));
    }
    rep.add_malformed(IngestReason::BadSeverity, rec_offset, "",
                      "severity byte out of range");
    return;
  }
  RasEvent ev;
  ev.event_time = TimePoint(rec.time_usec);
  try {
    ev.location = machine.location_from_packed(rec.packed_location);
  } catch (const Error& e) {
    if (mode == ParseMode::Strict) throw;
    rep.add_malformed(IngestReason::BadLocation, rec_offset, "", e.what());
    return;
  }
  ev.errcode = *dict.remap[rec.dict_index];
  ev.serial = rec.serial;
  ev.severity = static_cast<Severity>(rec.severity);
  // A fully-valid record that fails the exact predicate still counts as
  // attempted and ok — accounting must not depend on the query.
  if (filter != nullptr && !(filter->match_time(rec.time_usec) &&
                             filter->match_location(rec.packed_location))) {
    rep.add_ok();
    return;
  }
  // RECID = emit position (chunked readers rebase at merge): lets the log
  // constructor take the read-only TrustedRecids finalize.
  ev.recid = static_cast<std::int64_t>(events.size() + 1);
  events.push_back(ev);
  rep.add_ok();
}

}  // namespace

void decode_ras_records(bin::PayloadCursor& cur, const RasDictionary* dict,
                        ParseMode mode, const machine::MachineModel& machine,
                        IngestReport& rep, std::vector<RasEvent>& events,
                        std::uint64_t& attempted, const bin::ZoneFilter* filter) {
  const auto n = cur.get<std::uint32_t>();
  // Writer-canonical blocks hold exactly n contiguous records; decode them
  // straight from the payload view, skipping per-record cursor bookkeeping.
  // Any other shape (an adversarial CRC-valid payload) takes the
  // bounds-checked loop below with identical accounting.
  if (dict != nullptr &&
      cur.remaining() == std::size_t{n} * sizeof(PackedRecord)) {
    const std::uint64_t base = cur.offset();
    const std::string_view raw = cur.take(cur.remaining());
    for (std::uint32_t i = 0; i < n; ++i) {
      PackedRecord rec;
      std::memcpy(&rec, raw.data() + std::size_t{i} * sizeof rec, sizeof rec);
      ++attempted;
      decode_one(rec, base + std::uint64_t{i} * sizeof rec, *dict, mode, machine, rep,
                 events, filter);
    }
    return;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t rec_offset = cur.offset();
    PackedRecord rec;
    cur.read(&rec, sizeof rec);
    ++attempted;
    if (dict == nullptr) {
      // Every dictionary copy was damaged; nothing to resolve against.
      if (mode == ParseMode::Strict) {
        throw ParseError("records before dictionary in binary RAS log");
      }
      rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                        "record with no surviving dictionary");
      continue;
    }
    decode_one(rec, rec_offset, *dict, mode, machine, rep, events, filter);
  }
}

RasLocDict parse_ras_loc_dict(bin::PayloadCursor& cur,
                              const machine::MachineModel& machine, ParseMode mode) {
  RasLocDict dict;
  const auto size = cur.get<std::uint32_t>();
  if (size > 1'000'000) throw ParseError("implausible location dictionary size");
  dict.keys.reserve(size);
  dict.locs.reserve(size);
  dict.valid.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto key = cur.get<std::uint32_t>();
    dict.keys.push_back(key);
    try {
      dict.locs.push_back(machine.location_from_packed(key));
      dict.valid.push_back(1);
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      dict.locs.emplace_back();
      dict.valid.push_back(0);
      dict.all_valid = false;
    }
  }
  return dict;
}

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

/// Pointer-based LEB128 decode; returns the advanced pointer, or null on
/// truncation / overlong encoding. The column loops below run millions of
/// varints per file, which is too hot for the string_view-plus-index
/// bookkeeping of bin::get_varint: when 10 bytes are available the unrolled
/// body needs no per-byte bounds check and no loop-carried shift counter.
/// (A branchless SWAR decode was measured slower here — column varint
/// lengths are highly predictable, so the byte loop's branches are ~free.)
inline const std::uint8_t* take_varint(const std::uint8_t* p, const std::uint8_t* end,
                                       std::uint64_t& out) {
  if (end - p >= 10) [[likely]] {
    std::uint8_t b = *p++;
    std::uint64_t v = b & 0x7Fu;
    if (b < 0x80) {
      out = v;
      return p;
    }
    for (int shift = 7; shift < 70; shift += 7) {
      b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if (b < 0x80) {
        out = v;
        return p;
      }
    }
    return nullptr;  // 10 continuation bytes: overlong
  }
  std::uint64_t v = 0;
  int shift = 0;
  while (p != end && shift < 64) {
    const std::uint8_t b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (b < 0x80) {
      out = v;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

}  // namespace

void encode_ras_column_block(std::string& payload, const RasEvent* events,
                             std::size_t n, const std::uint32_t* loc_idx,
                             bool compress, const machine::LocCodec& codec,
                             std::string& raw) {
  bin::ZoneMap zm;
  raw.clear();
  std::int64_t prev_t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t t = events[i].event_time.usec();
    bin::put_varint_signed(raw, t - prev_t);
    prev_t = t;
    zm.add_time(t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    bin::put_varint(raw, loc_idx[i]);
    zm.add_location(events[i].location.packed(), codec);
  }
  for (std::size_t i = 0; i < n; ++i) {
    bin::put_varint(raw, static_cast<std::uint32_t>(events[i].errcode));
  }
  // Serials are random surrogates — delta varints average ~5 bytes of
  // byte-at-a-time decode for 4 bytes of entropy, so the column is stored as
  // fixed-width little-endian u32 and decoded with one memcpy.
  for (std::size_t i = 0; i < n; ++i) {
    append_u32(raw, events[i].serial);
  }
  for (std::size_t i = 0; i < n; ++i) {
    raw.push_back(static_cast<char>(static_cast<std::uint8_t>(events[i].severity)));
  }
  payload.push_back(kRasColumnTag);
  append_u32(payload, static_cast<std::uint32_t>(n));
  bin::append_zone_map(payload, zm);
  bin::append_column_body(payload, raw, compress);
}

bool decode_ras_columns(std::string_view body, std::uint32_t n, RasColumns& cols) {
  // Lower bound: three varint columns (>= 1 byte each) plus the 5-byte fixed
  // tail (u32 serial + severity byte) per record. Rejecting early also
  // bounds the allocations below by body size.
  if (std::uint64_t{n} * 8 > body.size()) return false;
  cols.times.resize(n);
  cols.locs.resize(n);
  cols.errs.resize(n);
  cols.serials.resize(n);
  const std::size_t fixed_tail = std::size_t{n} * 5;
  const auto* p = reinterpret_cast<const std::uint8_t*>(body.data());
  // The fixed-width tail doubles as the varint decode bound: a varint that
  // runs into it is a damaged block, not a serial.
  const std::uint8_t* vend = p + (body.size() - fixed_tail);
  std::int64_t prev = 0;
  std::int64_t* times = cols.times.data();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t raw = 0;
    if ((p = take_varint(p, vend, raw)) == nullptr) return false;
    prev += bin::unzigzag(raw);
    times[i] = prev;
  }
  std::uint32_t* locs = cols.locs.data();
  std::uint32_t max_loc = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if ((p = take_varint(p, vend, v)) == nullptr || v > UINT32_MAX) return false;
    locs[i] = static_cast<std::uint32_t>(v);
    max_loc = std::max(max_loc, locs[i]);
  }
  cols.max_loc = max_loc;
  std::uint32_t* errs = cols.errs.data();
  std::uint32_t max_err = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if ((p = take_varint(p, vend, v)) == nullptr || v > UINT32_MAX) return false;
    errs[i] = static_cast<std::uint32_t>(v);
    max_err = std::max(max_err, errs[i]);
  }
  cols.max_err = max_err;
  // Writer-canonical shape is enforced: the varint columns end exactly where
  // the fixed tail begins, anything else is a damaged block.
  if (p != vend) return false;
  // Serials memcpy straight into the u32 column (little-endian host, the
  // same assumption the frame layout makes); severities alias the raw tail.
  std::memcpy(cols.serials.data(), vend, std::size_t{n} * sizeof(std::uint32_t));
  cols.sevs = vend + std::size_t{n} * sizeof(std::uint32_t);
  std::uint8_t max_sev = 0;
  for (std::uint32_t i = 0; i < n; ++i) max_sev = std::max(max_sev, cols.sevs[i]);
  cols.max_sev = max_sev;
  return true;
}

void decode_ras_column_payload(bin::PayloadCursor& cur, const RasDictionary* dict,
                               const RasLocDict* locs, ParseMode mode,
                               const bin::ZoneFilter* filter, IngestReport& rep,
                               std::vector<RasEvent>& events,
                               std::uint64_t& attempted, bin::BlockCounters& blocks,
                               RasV3Scratch& scratch) {
  const std::uint64_t block_at = cur.offset();
  const auto n = cur.get<std::uint32_t>();
  bin::ZoneMap zm;
  {
    const std::string_view zb = cur.take(bin::kZoneMapBytes);
    std::size_t pos = 0;
    bin::read_zone_map(zb, pos, zm);
  }
  ++blocks.total;
  if (filter != nullptr && !filter->may_match(zm)) {
    // Zone-rejected: the CRC already vouched for the count field, so the
    // declared records feed `attempted` without decoding — the strict total
    // check and the lenient top-up stay exact under pushdown.
    attempted += n;
    ++blocks.skipped;
    return;
  }
  const auto codec = cur.get<std::uint8_t>();
  const auto raw_size = cur.get<std::uint32_t>();
  if (raw_size > bin::kMaxBlockPayload) {
    throw ParseError("implausible column block size in binary RAS log at byte offset " +
                     std::to_string(block_at));
  }
  std::string_view body;
  if (codec == bin::kCodecRaw) {
    if (cur.remaining() != raw_size) {
      throw ParseError("column block size mismatch in binary RAS log at byte offset " +
                       std::to_string(block_at));
    }
    body = cur.take(raw_size);
  } else if (codec == bin::kCodecLz) {
    scratch.raw.resize(raw_size);
    const std::string_view comp = cur.take(cur.remaining());
    if (!bin::lz::decompress(comp, scratch.raw.data(), raw_size)) {
      throw ParseError("corrupt compressed block in binary RAS log at byte offset " +
                       std::to_string(block_at));
    }
    body = scratch.raw;
  } else {
    throw ParseError("unknown codec in binary RAS log at byte offset " +
                     std::to_string(block_at));
  }
  if (!decode_ras_columns(body, n, scratch.cols)) {
    throw ParseError("corrupt column block in binary RAS log at byte offset " +
                     std::to_string(block_at));
  }
  ++blocks.decoded;

  // Per-record validation, in the v2 order (dictionary index, catalog remap,
  // severity, location) so strict errors and lenient reasons match across
  // versions. Lenient paths never throw past this point: a block either
  // fails whole (above) or accounts for every record it declared. Every
  // record counts as attempted whatever its fate, so the tally hoists out of
  // the loop.
  const RasColumns& cols = scratch.cols;
  attempted += n;
  if (dict == nullptr) {
    if (mode == ParseMode::Strict) {
      throw ParseError("records before dictionary in binary RAS log");
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      rep.add_malformed(IngestReason::UnknownErrcode, block_at, "",
                        "record with no surviving dictionary");
    }
    return;
  }
  const std::optional<ErrcodeId>* remap = dict->remap.data();
  const auto remap_n = static_cast<std::uint32_t>(dict->remap.size());
  const auto locs_n =
      locs != nullptr ? static_cast<std::uint32_t>(locs->locs.size()) : 0;
  const machine::Location* loc_arr = locs != nullptr ? locs->locs.data() : nullptr;
  const char* loc_valid = locs != nullptr ? locs->valid.data() : nullptr;
  const std::uint32_t* loc_keys = locs != nullptr ? locs->keys.data() : nullptr;
  // Fully-resolved dictionaries (always, in strict mode) let the hot loop
  // skip two per-record gather loads; the flags are loop-invariant so the
  // short-circuit branches predict for free.
  const bool all_mapped = dict->all_mapped;
  const bool all_valid = locs != nullptr && locs->all_valid;
  constexpr auto kMaxSev = static_cast<std::uint8_t>(Severity::Fatal);
  // Emit-side finalize bookkeeping, kept in registers across the loop.
  std::int64_t last_time = scratch.last_time;
  bool sorted = scratch.sorted;
  // Three compares against the column maxima prove every record in the
  // block valid at once — the overwhelmingly common case for an intact
  // file — so the emit loop runs with no per-record validation at all.
  if (filter == nullptr && all_mapped && all_valid && cols.max_err < remap_n &&
      cols.max_loc < locs_n && cols.max_sev <= kMaxSev) [[likely]] {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int64_t t = cols.times[i];
      const std::uint8_t sev = cols.sevs[i];
      events.emplace_back(static_cast<std::int64_t>(events.size() + 1), TimePoint(t),
                          loc_arr[cols.locs[i]], *remap[cols.errs[i]],
                          static_cast<Severity>(sev), cols.serials[i]);
      sorted &= t >= last_time;
      last_time = t;
      if (sev == kMaxSev) {
        scratch.fatal.event_time.push_back(TimePoint(t));
        scratch.fatal.errcode.push_back(*remap[cols.errs[i]]);
        scratch.fatal.loc_key.push_back(loc_arr[cols.locs[i]].packed());
        scratch.fatal.log_index.push_back(events.size() - 1);
      }
    }
    scratch.last_time = last_time;
    scratch.sorted = sorted;
    rep.add_ok(n);
    return;
  }
  std::uint64_t ok = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t err_idx = cols.errs[i];
    const std::uint32_t li = cols.locs[i];
    const std::uint8_t sev = cols.sevs[i];
    // One fused validity test on the hot path; its short-circuit order is
    // the v2 order, and the rare failure falls through to the per-reason
    // chain below so strict errors and lenient tallies stay byte-compatible.
    if (err_idx < remap_n && (all_mapped || remap[err_idx]) && sev <= kMaxSev &&
        loc_arr != nullptr && li < locs_n && (all_valid || loc_valid[li])) [[likely]] {
      if (filter != nullptr && !(filter->match_time(cols.times[i]) &&
                                 filter->match_location(loc_keys[li]))) {
        // Exact-filtered records are valid — they count as ok so accounting
        // is query-independent; they just do not land in the output.
        ++ok;
        continue;
      }
      // Parenthesized aggregate init constructs the event in place — no
      // zero-initialized temporary, one 40-byte store per record. The RECID
      // is the emit position (chunked readers rebase at merge), which lets
      // the log constructor take the read-only TrustedRecids finalize.
      const std::int64_t t = cols.times[i];
      events.emplace_back(static_cast<std::int64_t>(events.size() + 1), TimePoint(t),
                          loc_arr[li], *remap[err_idx], static_cast<Severity>(sev),
                          cols.serials[i]);
      ++ok;
      sorted &= t >= last_time;
      last_time = t;
      if (sev == kMaxSev) {
        scratch.fatal.event_time.push_back(TimePoint(t));
        scratch.fatal.errcode.push_back(*remap[err_idx]);
        scratch.fatal.loc_key.push_back(loc_arr[li].packed());
        scratch.fatal.log_index.push_back(events.size() - 1);
      }
      continue;
    }
    if (err_idx >= dict->remap.size()) {
      if (mode == ParseMode::Strict) throw ParseError("bad dictionary index");
      rep.add_malformed(IngestReason::BadRecord, block_at, "",
                        "dictionary index out of range");
      continue;
    }
    if (!dict->remap[err_idx]) {
      rep.add_malformed(IngestReason::UnknownErrcode, block_at, "",
                        "errcode name not in target catalog");
      continue;
    }
    if (sev > kMaxSev) {
      if (mode == ParseMode::Strict) {
        throw ParseError("bad severity in binary RAS log at byte offset " +
                         std::to_string(block_at));
      }
      rep.add_malformed(IngestReason::BadSeverity, block_at, "",
                        "severity byte out of range");
      continue;
    }
    if (locs == nullptr) {
      if (mode == ParseMode::Strict) {
        throw ParseError("records before location dictionary in binary RAS log");
      }
      rep.add_malformed(IngestReason::BadLocation, block_at, "",
                        "record with no surviving location dictionary");
      continue;
    }
    if (li >= locs->locs.size()) {
      if (mode == ParseMode::Strict) {
        throw ParseError("bad location index in binary RAS log at byte offset " +
                         std::to_string(block_at));
      }
      rep.add_malformed(IngestReason::BadRecord, block_at, "",
                        "location index out of range");
      continue;
    }
    if (!locs->valid[li]) {
      // Strict mode threw at dictionary parse time, so this is lenient-only.
      rep.add_malformed(IngestReason::BadLocation, block_at, "",
                        "invalid packed location key");
      continue;
    }
    if (filter != nullptr && !(filter->match_time(cols.times[i]) &&
                               filter->match_location(locs->keys[li]))) {
      ++ok;
      continue;
    }
    RasEvent ev;
    ev.recid = static_cast<std::int64_t>(events.size() + 1);
    ev.event_time = TimePoint(cols.times[i]);
    ev.location = locs->locs[li];
    ev.errcode = *dict->remap[err_idx];
    ev.serial = cols.serials[i];
    ev.severity = static_cast<Severity>(sev);
    events.push_back(ev);
    ++ok;
    sorted &= cols.times[i] >= last_time;
    last_time = cols.times[i];
    if (sev == kMaxSev) {
      scratch.fatal.event_time.push_back(ev.event_time);
      scratch.fatal.errcode.push_back(ev.errcode);
      scratch.fatal.loc_key.push_back(ev.location.packed());
      scratch.fatal.log_index.push_back(events.size() - 1);
    }
  }
  scratch.last_time = last_time;
  scratch.sorted = sorted;
  if (ok != 0) rep.add_ok(ok);
}

void RasStreamDecoder::on_payload(std::string_view payload,
                                  std::uint64_t payload_offset) {
  bin::PayloadCursor cur(payload, payload_offset, "binary RAS log");
  try {
    const char tag = cur.get<char>();
    if (tag == kRasDictTag) {
      RasDictionary d = parse_ras_dictionary(cur, *catalog_, mode_);
      if (!dict_) {
        dict_ = std::move(d);
        events_.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(dict_->total_records, reserve_cap_)));
      }
      return;
    }
    if (tag == kRasMetaTag) {
      bin::StoreMeta m = parse_store_meta(cur);
      if (m.machine != machine_->name() && mode_ == ParseMode::Strict) {
        throw ParseError("binary RAS log written for machine '" + m.machine +
                         "' but read with model '" + std::string(machine_->name()) + "'");
      }
      if (!meta_) meta_ = std::move(m);
      return;
    }
    if (tag == kRasLocTag) {
      RasLocDict d = parse_ras_loc_dict(cur, *machine_, mode_);
      if (!loc_dict_) loc_dict_ = std::move(d);
      return;
    }
    if (tag == kRasSegmentTag) {
      // Footers index blocks the stream has already (or will) deliver; the
      // one-shot file readers use them for zero-touch skips, a streaming
      // decoder just validates the shape and moves on.
      std::vector<bin::SegmentEntry> entries;
      bin::parse_segment_footer(cur, entries);
      return;
    }
    if (tag == kRasColumnTag) {
      decode_ras_column_payload(cur, dict_ ? &*dict_ : nullptr,
                                loc_dict_ ? &*loc_dict_ : nullptr, mode_, filter_,
                                record_rep_, events_, attempted_, blocks_, scratch_);
      return;
    }
    if (tag != kRasRecordTag) {
      if (mode_ == ParseMode::Strict) {
        throw ParseError("unknown block tag in binary RAS log at byte offset " +
                         std::to_string(payload_offset - bin::kBlockHeaderBytes));
      }
      return;  // records inside are covered by the lost-record top-up
    }
    ++blocks_.total;
    saw_v2_records_ = true;
    decode_ras_records(cur, dict_ ? &*dict_ : nullptr, mode_, *machine_, record_rep_,
                       events_, attempted_, filter_);
    ++blocks_.decoded;
  } catch (const Error&) {
    if (mode_ == ParseMode::Strict) throw;
    // A CRC-valid block whose payload still does not parse (writer bug or an
    // adversarial file): skip it; the lost-record top-up accounts for its
    // records.
  }
}

RasLog RasStreamDecoder::finish(IngestReport& rep, const IngestReport& frame_damage) {
  rep.merge(record_rep_);
  record_rep_ = IngestReport{};
  if (mode_ == ParseMode::Strict) {
    if (!dict_) throw ParseError("missing dictionary in binary RAS log");
    if (attempted_ != dict_->total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict_->total_records) + ", got " +
                       std::to_string(attempted_));
    }
  } else {
    // Exactly the records that vanished with dropped/undecodable frames.
    const std::uint64_t expected = dict_ ? dict_->total_records : attempted_;
    if (expected > attempted_) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted_);
    }
    rep.adopt_samples(frame_damage);
  }
  if (!saw_v2_records_) {
    // Pure columnar stream: the emit loop gathered the fatal columns and
    // verified time order as it went, so the log adopts them without
    // another pass over the event array.
    return RasLog(std::move(events_), *catalog_, *machine_,
                  RasLog::TrustedParts{std::move(scratch_.fatal), scratch_.sorted});
  }
  return RasLog(std::move(events_), *catalog_, *machine_, RasLog::TrustedRecids{});
}

}  // namespace coral::ras
