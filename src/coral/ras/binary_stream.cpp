#include "coral/ras/binary_stream.hpp"

#include <algorithm>
#include <cstring>

#include "coral/common/error.hpp"

namespace coral::ras {

RasDictionary parse_ras_dictionary(bin::PayloadCursor& cur, const Catalog& catalog,
                                   ParseMode mode) {
  RasDictionary dict;
  const auto size = cur.get<std::uint32_t>();
  if (size > 1'000'000) throw ParseError("implausible dictionary size");
  dict.remap.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto len = cur.get<std::uint16_t>();
    const std::string name = cur.get_string(len);
    const auto id = catalog.find(name);
    if (!id && mode == ParseMode::Strict) {
      throw ParseError("unknown errcode in binary RAS log: '" + name + "'");
    }
    dict.remap.push_back(id);
  }
  dict.total_records = cur.get<std::uint64_t>();
  return dict;
}

namespace {

// Validate and append one fixed-size record. Shared by the contiguous fast
// path and the bounds-checked slow path so their accounting cannot drift.
void decode_one(const PackedRecord& rec, std::uint64_t rec_offset,
                const RasDictionary& dict, ParseMode mode,
                const machine::MachineModel& machine, IngestReport& rep,
                std::vector<RasEvent>& events) {
  if (rec.dict_index >= dict.remap.size()) {
    if (mode == ParseMode::Strict) throw ParseError("bad dictionary index");
    rep.add_malformed(IngestReason::BadRecord, rec_offset, "",
                      "dictionary index out of range");
    return;
  }
  if (!dict.remap[rec.dict_index]) {
    rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                      "errcode name not in target catalog");
    return;
  }
  if (rec.severity > static_cast<std::uint8_t>(Severity::Fatal)) {
    if (mode == ParseMode::Strict) {
      throw ParseError("bad severity in binary RAS log at byte offset " +
                       std::to_string(rec_offset));
    }
    rep.add_malformed(IngestReason::BadSeverity, rec_offset, "",
                      "severity byte out of range");
    return;
  }
  RasEvent ev;
  ev.event_time = TimePoint(rec.time_usec);
  try {
    ev.location = machine.location_from_packed(rec.packed_location);
  } catch (const Error& e) {
    if (mode == ParseMode::Strict) throw;
    rep.add_malformed(IngestReason::BadLocation, rec_offset, "", e.what());
    return;
  }
  ev.errcode = *dict.remap[rec.dict_index];
  ev.serial = rec.serial;
  ev.severity = static_cast<Severity>(rec.severity);
  events.push_back(ev);
  rep.add_ok();
}

}  // namespace

void decode_ras_records(bin::PayloadCursor& cur, const RasDictionary* dict,
                        ParseMode mode, const machine::MachineModel& machine,
                        IngestReport& rep, std::vector<RasEvent>& events,
                        std::uint64_t& attempted) {
  const auto n = cur.get<std::uint32_t>();
  // Writer-canonical blocks hold exactly n contiguous records; decode them
  // straight from the payload view, skipping per-record cursor bookkeeping.
  // Any other shape (an adversarial CRC-valid payload) takes the
  // bounds-checked loop below with identical accounting.
  if (dict != nullptr &&
      cur.remaining() == std::size_t{n} * sizeof(PackedRecord)) {
    const std::uint64_t base = cur.offset();
    const std::string_view raw = cur.take(cur.remaining());
    for (std::uint32_t i = 0; i < n; ++i) {
      PackedRecord rec;
      std::memcpy(&rec, raw.data() + std::size_t{i} * sizeof rec, sizeof rec);
      ++attempted;
      decode_one(rec, base + std::uint64_t{i} * sizeof rec, *dict, mode, machine, rep,
                 events);
    }
    return;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t rec_offset = cur.offset();
    PackedRecord rec;
    cur.read(&rec, sizeof rec);
    ++attempted;
    if (dict == nullptr) {
      // Every dictionary copy was damaged; nothing to resolve against.
      if (mode == ParseMode::Strict) {
        throw ParseError("records before dictionary in binary RAS log");
      }
      rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                        "record with no surviving dictionary");
      continue;
    }
    decode_one(rec, rec_offset, *dict, mode, machine, rep, events);
  }
}

void RasStreamDecoder::on_payload(std::string_view payload,
                                  std::uint64_t payload_offset) {
  bin::PayloadCursor cur(payload, payload_offset, "binary RAS log");
  try {
    const char tag = cur.get<char>();
    if (tag == kRasDictTag) {
      RasDictionary d = parse_ras_dictionary(cur, *catalog_, mode_);
      if (!dict_) {
        dict_ = std::move(d);
        events_.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(dict_->total_records, reserve_cap_)));
      }
      return;
    }
    if (tag != kRasRecordTag) {
      if (mode_ == ParseMode::Strict) {
        throw ParseError("unknown block tag in binary RAS log at byte offset " +
                         std::to_string(payload_offset - bin::kBlockHeaderBytes));
      }
      return;  // records inside are covered by the lost-record top-up
    }
    decode_ras_records(cur, dict_ ? &*dict_ : nullptr, mode_, *machine_, record_rep_,
                       events_, attempted_);
  } catch (const Error&) {
    if (mode_ == ParseMode::Strict) throw;
    // A CRC-valid block whose payload still does not parse (writer bug or an
    // adversarial file): skip it; the lost-record top-up accounts for its
    // records.
  }
}

RasLog RasStreamDecoder::finish(IngestReport& rep, const IngestReport& frame_damage) {
  rep.merge(record_rep_);
  record_rep_ = IngestReport{};
  if (mode_ == ParseMode::Strict) {
    if (!dict_) throw ParseError("missing dictionary in binary RAS log");
    if (attempted_ != dict_->total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict_->total_records) + ", got " +
                       std::to_string(attempted_));
    }
  } else {
    // Exactly the records that vanished with dropped/undecodable frames.
    const std::uint64_t expected = dict_ ? dict_->total_records : attempted_;
    if (expected > attempted_) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted_);
    }
    rep.adopt_samples(frame_damage);
  }
  return RasLog(std::move(events_), *catalog_, *machine_);
}

}  // namespace coral::ras
