#pragma once

#include <cstdint>
#include <string>

namespace coral::ras {

/// RAS record severity (§III-B). DEBUG/TRACE never occur in the studied log
/// but are accepted by the parser.
enum class Severity : std::uint8_t { Debug, Trace, Info, Warning, Error, Fatal };

/// Software component reporting the event (§III-B COMPONENT field).
enum class Component : std::uint8_t {
  Application,  ///< the running job (reports no FATAL events in the log)
  Kernel,       ///< OS kernel domain (~75% of fatal events)
  Mc,           ///< machine controller
  Mmcs,         ///< control system on the service node
  BareMetal,    ///< service-related facilities
  Card,         ///< card controller
  Diags,        ///< diagnostics
};

/// Ground-truth cause of a fault (generator-side label; §IV terms).
enum class FaultNature : std::uint8_t {
  SystemFailure,     ///< hardware or system software
  ApplicationError,  ///< buggy code or user mistake
};

/// Ground-truth effect of a fatal event on jobs running at its location.
enum class JobImpact : std::uint8_t {
  Interrupting,  ///< kills jobs at the location
  Benign,        ///< transient/recovered; jobs keep running
};

const char* to_string(Severity s);
const char* to_string(Component c);
const char* to_string(FaultNature n);
const char* to_string(JobImpact i);

/// Parse a severity name ("FATAL", case-sensitive). Throws ParseError.
Severity parse_severity(const std::string& text);
/// Parse a component name ("KERNEL"). Throws ParseError.
Component parse_component(const std::string& text);

}  // namespace coral::ras
