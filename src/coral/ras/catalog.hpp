#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coral/bgp/location.hpp"
#include "coral/ras/types.hpp"

namespace coral::ras {

/// Index into the errcode catalog; stable across a process.
using ErrcodeId = std::int32_t;

/// Static description of one ERRCODE.
///
/// The catalog plays two roles. For the *generator* it is ground truth: the
/// `nature`, `impact`, `propagates`, `persistent` and `idle_bias` fields
/// drive fault injection. For the *analysis* side only the identifying
/// fields (name, msg_id, component, subcomponent, severity, message) are
/// meaningful — the co-analysis pipeline must rediscover the ground-truth
/// labels from the logs alone, and tests score it against these fields.
struct ErrcodeInfo {
  std::string name;          ///< ERRCODE, e.g. "_bgp_err_cns_ras_storm_fatal"
  std::string msg_id;        ///< MSG_ID, e.g. "KERN_0802"
  Component component;       ///< COMPONENT
  std::string subcomponent;  ///< SUBCOMPONENT functional area
  Severity severity;         ///< severity this code is reported with
  FaultNature nature;        ///< ground truth: system failure vs app error
  JobImpact impact;          ///< ground truth: interrupts jobs at location?
  bool propagates;           ///< shared-resource fault hitting all running jobs
  bool persistent;           ///< persists until repaired (re-hits later jobs)
  bool idle_bias;            ///< manifests on idle hardware (diagnostics etc.)
  bgp::LocationKind loc_kind;  ///< hardware level the event is reported at
  double weight;             ///< relative ground-truth fault frequency
  std::string message;       ///< MESSAGE template
};

/// The full Intrepid errcode catalog: 82 FATAL errcodes across six
/// components (§III-B) plus non-fatal background codes. Composition of the
/// FATAL codes matches the paper's co-analysis result (§IV):
///   - 8 application-error codes (two of which propagate via the shared
///     file system: bg_code_script_error, CiodHungProxy),
///   - 2 benign codes (BULK_POWER_FATAL, _bgp_err_torus_fatal_sum),
///   - 4 persistent system-failure codes (L1 cache parity, DDR controller,
///     file-system configuration, link card),
///   - 19 further interrupting system-failure codes,
///   - 49 system-failure codes biased to idle hardware (the paper's
///     "undetermined" codes — no job ever ran at their locations).
class Catalog {
 public:
  /// Build a catalog from an arbitrary errcode table (ErrcodeId = index
  /// into `entries`). This is how tests and what-if studies describe
  /// variant machines; pair it with a coral::Context to run the full
  /// generator + analysis stack against the custom table.
  explicit Catalog(std::vector<ErrcodeInfo> entries);

  /// The process-wide default (Intrepid) catalog, immutable after
  /// construction. Prefer taking a catalog through coral::Context; this
  /// accessor exists only so a default-constructed Context has a machine.
  static const Catalog& instance();

  const ErrcodeInfo& info(ErrcodeId id) const;
  std::size_t size() const { return entries_.size(); }
  std::span<const ErrcodeInfo> all() const { return entries_; }

  /// Ids of all FATAL-severity errcodes (the 82 the paper studies).
  std::span<const ErrcodeId> fatal_ids() const { return fatal_ids_; }
  /// Ids of non-fatal (INFO/WARNING/ERROR) background codes.
  std::span<const ErrcodeId> nonfatal_ids() const { return nonfatal_ids_; }

  /// Look up an errcode by name; nullopt if unknown. Heterogeneous: accepts
  /// any string-ish argument without allocating (binary search over a
  /// name-sorted id index).
  std::optional<ErrcodeId> find(std::string_view name) const;

  /// Convenience ground-truth counters (used by tests and EXPERIMENTS.md).
  int fatal_count() const { return static_cast<int>(fatal_ids_.size()); }
  int application_error_count() const;
  int benign_count() const;

 private:
  Catalog();  // the built-in Intrepid table (see instance())

  void index_entries();

  std::vector<ErrcodeInfo> entries_;
  std::vector<ErrcodeId> fatal_ids_;
  std::vector<ErrcodeId> nonfatal_ids_;
  std::vector<ErrcodeId> by_name_;  ///< ids sorted by entries_[id].name
};

/// The catalog a default-constructed coral::Context analyzes against — the
/// built-in Intrepid table. This shim (with Catalog::instance() behind it)
/// is the only sanctioned touch point for process-global catalog state.
const Catalog& default_catalog();

/// Well-known errcode names used throughout tests and benches.
namespace codes {
inline constexpr const char* kBulkPowerFatal = "BULK_POWER_FATAL";
inline constexpr const char* kTorusFatalSum = "_bgp_err_torus_fatal_sum";
inline constexpr const char* kRasStormFatal = "_bgp_err_cns_ras_storm_fatal";
inline constexpr const char* kCiodHungProxy = "CiodHungProxy";
inline constexpr const char* kScriptError = "bg_code_script_error";
inline constexpr const char* kDdrController = "_bgp_err_ddr_controller_fatal";
inline constexpr const char* kFsConfig = "fs_configuration_error";
inline constexpr const char* kLinkCardError = "link_card_error";
}  // namespace codes

}  // namespace coral::ras
