#include "coral/ras/types.hpp"

#include "coral/common/error.hpp"

namespace coral::ras {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Debug: return "DEBUG";
    case Severity::Trace: return "TRACE";
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Error: return "ERROR";
    case Severity::Fatal: return "FATAL";
  }
  return "?";
}

const char* to_string(Component c) {
  switch (c) {
    case Component::Application: return "APPLICATION";
    case Component::Kernel: return "KERNEL";
    case Component::Mc: return "MC";
    case Component::Mmcs: return "MMCS";
    case Component::BareMetal: return "BAREMETAL";
    case Component::Card: return "CARD";
    case Component::Diags: return "DIAGS";
  }
  return "?";
}

const char* to_string(FaultNature n) {
  return n == FaultNature::SystemFailure ? "system failure" : "application error";
}

const char* to_string(JobImpact i) {
  return i == JobImpact::Interrupting ? "interrupting" : "benign";
}

Severity parse_severity(const std::string& text) {
  for (Severity s : {Severity::Debug, Severity::Trace, Severity::Info, Severity::Warning,
                     Severity::Error, Severity::Fatal}) {
    if (text == to_string(s)) return s;
  }
  throw ParseError("unknown severity: '" + text + "'");
}

Component parse_component(const std::string& text) {
  for (Component c : {Component::Application, Component::Kernel, Component::Mc,
                      Component::Mmcs, Component::BareMetal, Component::Card,
                      Component::Diags}) {
    if (text == to_string(c)) return c;
  }
  throw ParseError("unknown component: '" + text + "'");
}

}  // namespace coral::ras
