#pragma once

#include <cstdint>

#include "coral/bgp/location.hpp"
#include "coral/common/time.hpp"
#include "coral/ras/catalog.hpp"
#include "coral/ras/types.hpp"

namespace coral::ras {

/// One RAS record (Table II of the paper), stored compactly: identity fields
/// that are functions of the errcode (MSG_ID, COMPONENT, SUBCOMPONENT,
/// MESSAGE) live in the Catalog and are materialized only on serialization.
struct RasEvent {
  std::int64_t recid = 0;       ///< RECID: sequence number in the log
  TimePoint event_time;         ///< EVENT_TIME
  bgp::Location location;       ///< LOCATION
  ErrcodeId errcode = 0;        ///< index into Catalog
  Severity severity = Severity::Info;  ///< SEVERITY as recorded
  std::uint32_t serial = 0;     ///< hardware serial-number surrogate

  /// Materialize the catalog-resident identity fields. Which catalog an
  /// event indexes into is a property of the log it came from, so callers
  /// pass it explicitly (RasLog::catalog(), or Context::catalog()).
  const ErrcodeInfo& info(const Catalog& catalog) const { return catalog.info(errcode); }
  bool is_fatal() const { return severity == Severity::Fatal; }
};

}  // namespace coral::ras
