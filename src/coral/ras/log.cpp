#include "coral/ras/log.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>

#include "coral/common/csv.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/common/strings.hpp"

namespace coral::ras {

RasLog::RasLog(std::vector<RasEvent> events, const Catalog& catalog,
               const machine::MachineModel& machine)
    : catalog_(&catalog), machine_(&machine), events_(std::move(events)) {
  finalize();
}

RasLog::RasLog(std::vector<RasEvent> events, const Catalog& catalog,
               const machine::MachineModel& machine, TrustedRecids)
    : catalog_(&catalog), machine_(&machine), events_(std::move(events)) {
  finalize_impl(true);
}

RasLog::RasLog(std::vector<RasEvent> events, const Catalog& catalog,
               const machine::MachineModel& machine, TrustedParts parts)
    : catalog_(&catalog), machine_(&machine), events_(std::move(events)) {
  if (parts.sorted) {
    fatal_ = std::move(parts.fatal);
    finalized_ = true;
    return;
  }
  finalize_impl(false);
}

void RasLog::append(RasEvent ev) {
  finalized_ = false;
  events_.push_back(ev);
}

void RasLog::finalize() { finalize_impl(false); }

void RasLog::finalize_impl(bool trust_recids) {
  const auto by_time = [](const RasEvent& a, const RasEvent& b) {
    return a.event_time < b.event_time;
  };
  // The order check, RECID assignment and the fatal-column gather all touch
  // every record, so they share a single walk — on the multi-million-record
  // reload path the separate passes were pure memory traffic. Binary logs
  // are written from a finalized (time-ordered) RasLog, so the first walk
  // almost always completes; an out-of-order log (hand-built via append)
  // detects mid-walk, sorts, and rescans. With trusted RECIDs the walk is
  // read-only — nothing is dirtied, nothing written back.
  for (int pass = 0; pass < 2; ++pass) {
    fatal_.event_time.clear();
    fatal_.errcode.clear();
    fatal_.loc_key.clear();
    fatal_.log_index.clear();
    bool sorted = true;
    std::int64_t recid = 1;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      RasEvent& ev = events_[i];
      if (i != 0 && ev.event_time < events_[i - 1].event_time) {
        sorted = false;
        break;
      }
      if (!trust_recids) ev.recid = recid++;
      if (ev.is_fatal()) {
        fatal_.event_time.push_back(ev.event_time);
        fatal_.errcode.push_back(ev.errcode);
        fatal_.loc_key.push_back(ev.location.packed());
        fatal_.log_index.push_back(i);
      }
    }
    if (sorted) break;
    // A caller that promised order but did not deliver loses the fast path:
    // sort and rewrite RECIDs like any other finalize.
    trust_recids = false;
    std::stable_sort(events_.begin(), events_.end(), by_time);
  }
  finalized_ = true;
}

const std::vector<std::size_t>& RasLog::fatal_indices() const {
  CORAL_EXPECTS(finalized_);
  return fatal_.log_index;
}

const FatalColumns& RasLog::fatal_columns() const {
  CORAL_EXPECTS(finalized_);
  return fatal_;
}

std::vector<RasEvent> RasLog::fatal_events() const {
  std::vector<RasEvent> out;
  if (finalized_) {
    out.reserve(fatal_.log_index.size());
    for (const std::size_t i : fatal_.log_index) out.push_back(events_[i]);
    return out;
  }
  for (const auto& ev : events_) {
    if (ev.is_fatal()) out.push_back(ev);
  }
  return out;
}

std::size_t RasLog::lower_bound(TimePoint t) const {
  CORAL_EXPECTS(finalized_);
  const auto it = std::lower_bound(events_.begin(), events_.end(), t,
                                   [](const RasEvent& ev, TimePoint tp) {
                                     return ev.event_time < tp;
                                   });
  return static_cast<std::size_t>(it - events_.begin());
}

std::vector<RasEvent> RasLog::in_range(TimePoint begin, TimePoint end) const {
  std::vector<RasEvent> out;
  for (std::size_t i = lower_bound(begin); i < events_.size(); ++i) {
    if (events_[i].event_time >= end) break;
    out.push_back(events_[i]);
  }
  return out;
}

RasLogSummary RasLog::summary() const {
  RasLogSummary s;
  s.total_records = events_.size();
  std::set<ErrcodeId> fatal_codes;
  std::set<Component> fatal_components;
  for (const auto& ev : events_) {
    s.by_severity[ev.severity] += 1;
    if (ev.is_fatal()) {
      s.fatal_records += 1;
      fatal_codes.insert(ev.errcode);
      fatal_components.insert(ev.info(*catalog_).component);
      s.fatal_by_component[ev.info(*catalog_).component] += 1;
    }
  }
  s.fatal_errcode_types = fatal_codes.size();
  s.fatal_component_types = fatal_components.size();
  if (!events_.empty()) {
    s.first_time = events_.front().event_time;
    s.last_time = events_.back().event_time;
  }
  return s;
}

void RasLog::write_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.write_row({"RECID", "MSG_ID", "COMPONENT", "SUBCOMPONENT", "ERRCODE", "SEVERITY",
               "EVENT_TIME", "LOCATION", "SERIAL", "MESSAGE"});
  for (const auto& ev : events_) {
    const ErrcodeInfo& info = ev.info(*catalog_);
    w.write_row({std::to_string(ev.recid), info.msg_id, to_string(info.component),
                 info.subcomponent, info.name, to_string(ev.severity),
                 ev.event_time.to_ras_string(), ev.location.to_string(),
                 std::to_string(ev.serial), info.message});
  }
}

namespace {

std::string row_snippet(const std::vector<std::string>& row) {
  std::string s;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) s += ',';
    s += row[i];
    if (s.size() > 64) break;
  }
  return s;
}

}  // namespace

RasLog RasLog::read_csv(std::istream& in, const Catalog& catalog, ParseMode mode,
                        IngestReport* report, InstrumentationSink* sink,
                        const machine::MachineModel& machine) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.ras_csv");

  CsvReader r(in, ',', mode, &rep);
  std::vector<std::string> row;
  if (!r.read_row(row)) throw ParseError("empty RAS CSV");
  if (row.size() != 10 || row[0] != "RECID") {
    // A damaged header is unrecoverable for column meaning, so even lenient
    // mode refuses to guess a schema.
    throw ParseError("bad RAS CSV header");
  }
  std::vector<RasEvent> events;
  while (r.read_row(row)) {
    if (row.size() == 1 && row[0].empty()) continue;  // trailing newline
    const std::uint64_t offset = r.row_offset();
    if (row.size() != 10) {
      if (mode == ParseMode::Strict) throw ParseError("bad RAS CSV row width");
      rep.add_malformed(IngestReason::RowWidth, offset, row_snippet(row),
                        "expected 10 fields, got " + std::to_string(row.size()));
      continue;
    }
    if (mode == ParseMode::Strict) {
      RasEvent ev;
      ev.recid = parse_int(row[0]);
      const auto code = catalog.find(row[4]);
      if (!code) throw ParseError("unknown ERRCODE in CSV: '" + row[4] + "'");
      ev.errcode = *code;
      ev.severity = parse_severity(row[5]);
      ev.event_time = TimePoint::parse_ras(row[6]);
      ev.location = machine.parse_location(row[7]);
      ev.serial = static_cast<std::uint32_t>(parse_int(row[8]));
      events.push_back(ev);
      rep.add_ok();
      continue;
    }
    // Lenient: classify the first failing field and move on to the next row.
    RasEvent ev;
    IngestReason reason = IngestReason::BadRecord;
    try {
      reason = IngestReason::BadNumber;
      ev.recid = parse_int(row[0]);
      reason = IngestReason::UnknownErrcode;
      const auto code = catalog.find(row[4]);
      if (!code) throw ParseError("unknown ERRCODE in CSV: '" + row[4] + "'");
      ev.errcode = *code;
      reason = IngestReason::BadSeverity;
      ev.severity = parse_severity(row[5]);
      reason = IngestReason::BadTimestamp;
      ev.event_time = TimePoint::parse_ras(row[6]);
      reason = IngestReason::BadLocation;
      ev.location = machine.parse_location(row[7]);
      reason = IngestReason::BadNumber;
      ev.serial = static_cast<std::uint32_t>(parse_int(row[8]));
    } catch (const Error& e) {
      rep.add_malformed(reason, offset, row_snippet(row), e.what());
      continue;
    }
    events.push_back(ev);
    rep.add_ok();
  }
  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.ras_csv");
  return RasLog(std::move(events), catalog, machine);
}

}  // namespace coral::ras
