#include "coral/ras/catalog.hpp"

#include <algorithm>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral::ras {

namespace {

using bgp::LocationKind;

struct Builder {
  std::vector<ErrcodeInfo> entries;

  void add(ErrcodeInfo info) { entries.push_back(std::move(info)); }

  // Interrupting system failure (non-persistent).
  void sys(const char* name, const char* msg_id, Component comp, const char* sub,
           LocationKind kind, double weight, const char* msg) {
    add({name, msg_id, comp, sub, Severity::Fatal, FaultNature::SystemFailure,
         JobImpact::Interrupting, /*propagates=*/false, /*persistent=*/false,
         /*idle_bias=*/false, kind, weight, msg});
  }

  // Persistent system failure: re-hits jobs until repaired.
  void sys_persistent(const char* name, const char* msg_id, Component comp, const char* sub,
                      LocationKind kind, double weight, const char* msg) {
    add({name, msg_id, comp, sub, Severity::Fatal, FaultNature::SystemFailure,
         JobImpact::Interrupting, false, /*persistent=*/true, false, kind, weight, msg});
  }

  // System failure biased to idle hardware (no job ever sees it).
  void sys_idle(const std::string& name, const std::string& msg_id, Component comp,
                const std::string& sub, LocationKind kind, double weight,
                const std::string& msg) {
    add({name, msg_id, comp, sub, Severity::Fatal, FaultNature::SystemFailure,
         JobImpact::Interrupting, false, false, /*idle_bias=*/true, kind, weight, msg});
  }

  // Application error; may propagate through the shared file system.
  void app(const char* name, const char* msg_id, const char* sub, LocationKind kind,
           bool propagates, double weight, const char* msg) {
    add({name, msg_id, Component::Kernel, sub, Severity::Fatal,
         FaultNature::ApplicationError, JobImpact::Interrupting, propagates, false, false,
         kind, weight, msg});
  }

  // FATAL-severity code that never interrupts jobs.
  void benign(const char* name, const char* msg_id, Component comp, const char* sub,
              LocationKind kind, double weight, const char* msg) {
    add({name, msg_id, comp, sub, Severity::Fatal, FaultNature::SystemFailure,
         JobImpact::Benign, false, false, false, kind, weight, msg});
  }

  // Non-fatal background record type.
  void noise(const char* name, const char* msg_id, Component comp, const char* sub,
             Severity sev, LocationKind kind, double weight, const char* msg) {
    add({name, msg_id, comp, sub, sev, FaultNature::SystemFailure, JobImpact::Benign,
         false, false, false, kind, weight, msg});
  }
};

}  // namespace

Catalog::Catalog() {
  Builder b;

  // --- Application errors (8; §IV-B). Reported from the KERNEL domain ---
  // (the paper notes no FATAL ever comes from APPLICATION). Weights are the
  // relative popularity of each bug class among buggy distinct jobs.
  b.app(codes::kScriptError, "KERN_1301", "CIOD", LocationKind::IoNode, /*propagates=*/true,
        3.6, "Job script error detected while accessing the file system");
  b.app(codes::kCiodHungProxy, "KERN_1302", "CIOD", LocationKind::IoNode, /*propagates=*/true,
        3.0, "CIOD proxy hung during file system operation");
  b.app("_bgp_err_invalid_mem_address", "KERN_1303", "CNK", LocationKind::ComputeCard, false,
        2.4, "Application fault: invalid memory address");
  b.app("_bgp_err_out_of_memory", "KERN_1304", "CNK", LocationKind::ComputeCard, false, 1.8,
        "Out of memory: application heap exhausted");
  b.app("_bgp_err_fs_operation", "KERN_1305", "CIOD", LocationKind::IoNode, false, 1.4,
        "File system operation failed for application I/O");
  b.app("_bgp_err_collective_op", "KERN_1306", "CNK", LocationKind::ComputeCard, false, 1.0,
        "Collective operation mismatch detected");
  b.app("_bgp_err_user_abort", "KERN_1307", "CNK", LocationKind::ComputeCard, false, 0.8,
        "Application aborted by user signal");
  b.app("CiodExitedChild", "KERN_1308", "CIOD", LocationKind::IoNode, false, 0.6,
        "CIOD child process exited unexpectedly");

  // --- Benign FATAL-severity codes (2; §IV-A) ---
  b.benign(codes::kBulkPowerFatal, "CARD_0702", Component::Card, "PALOMINO_P",
           LocationKind::Rack, 0.9,
           "An error was detected in a bulk power module; diagnostics running");
  b.benign(codes::kTorusFatalSum, "KERN_0901", Component::Kernel, "CNS_TORUS",
           LocationKind::ComputeCard, 2.9,
           "Torus fatal summary: error recovered by higher-level protocol");

  // --- Persistent system failures (4; §IV-B: repeatedly interrupt jobs
  //     at the same location until repaired) ---
  b.sys_persistent(codes::kRasStormFatal, "KERN_0802", Component::Kernel, "CNS",
                   LocationKind::ComputeCard, 2.0, "L1 data cache parity error");
  b.sys_persistent(codes::kDdrController, "KERN_0803", Component::Kernel, "DDR",
                   LocationKind::NodeCard, 1.6, "DDR controller error: uncorrectable");
  b.sys_persistent(codes::kFsConfig, "MMCS_0310", Component::Mmcs, "FS",
                   LocationKind::IoNode, 1.0,
                   "File system configuration error on I/O node");
  b.sys_persistent(codes::kLinkCardError, "CARD_0412", Component::Card, "LINKCARD",
                   LocationKind::LinkCard, 0.5, "Link card error: connection lost");

  // --- Other interrupting system failures (19) ---
  b.sys("_bgp_err_l2_array_fatal", "KERN_0804", Component::Kernel, "CNS",
        LocationKind::ComputeCard, 1.6, "L2 array uncorrectable error");
  b.sys("_bgp_err_l3_ecc_fatal", "KERN_0805", Component::Kernel, "L3",
        LocationKind::ComputeCard, 1.5, "L3 EDRAM ECC uncorrectable error");
  b.sys("_bgp_err_snoop_fatal", "KERN_0806", Component::Kernel, "CNS",
        LocationKind::ComputeCard, 0.5, "Snoop unit fatal error");
  b.sys("_bgp_err_tree_fatal", "KERN_0807", Component::Kernel, "CNS_TREE",
        LocationKind::ComputeCard, 1.3, "Tree network fatal error");
  b.sys("_bgp_err_dma_fatal", "KERN_0808", Component::Kernel, "DMA",
        LocationKind::ComputeCard, 1.1, "DMA unit fatal error");
  b.sys("_bgp_err_sram_parity", "KERN_0809", Component::Kernel, "CNS",
        LocationKind::ComputeCard, 0.5, "SRAM parity error");
  b.sys("_bgp_err_fpu_unavailable", "KERN_0810", Component::Kernel, "CNK",
        LocationKind::ComputeCard, 0.4, "FPU unavailable exception in kernel");
  b.sys("_bgp_err_kernel_panic", "KERN_0811", Component::Kernel, "CNK",
        LocationKind::ComputeCard, 1.5, "Compute node kernel panic");
  b.sys("_bgp_err_cns_assertion", "KERN_0812", Component::Kernel, "CNS",
        LocationKind::ComputeCard, 0.5, "CNS assertion failed");
  b.sys("mc_node_power_fault", "MC_0201", Component::Mc, "POWER",
        LocationKind::NodeCard, 0.5, "Machine controller detected node power fault");
  b.sys("mc_jtag_failure", "MC_0202", Component::Mc, "JTAG", LocationKind::NodeCard, 0.4,
        "JTAG communication failure");
  b.sys("mmcs_boot_failure", "MMCS_0301", Component::Mmcs, "BOOT",
        LocationKind::Midplane, 0.6, "Block boot failed");
  b.sys("mmcs_block_boot_timeout", "MMCS_0302", Component::Mmcs, "BOOT",
        LocationKind::Midplane, 0.5, "Block boot timed out");
  b.sys("mmcs_control_conn_lost", "MMCS_0303", Component::Mmcs, "CTRL",
        LocationKind::Midplane, 0.4, "Control connection to midplane lost");
  b.sys("DetectedClockCardErrors", "CARD_0411", Component::Card, "PALOMINO_S",
        LocationKind::ServiceCard, 0.5,
        "An error(s) was detected by the Clock card : Error=Loss of reference input");
  b.sys("node_card_power_fault", "CARD_0413", Component::Card, "PALOMINO_N",
        LocationKind::NodeCard, 0.6, "Node card power module fault");
  b.sys("fan_module_failure", "CARD_0414", Component::Card, "PALOMINO_F",
        LocationKind::Midplane, 0.4, "Fan module failure");
  b.sys("baremetal_env_fatal", "BM_0101", Component::BareMetal, "ENV",
        LocationKind::ServiceCard, 0.3, "Environmental monitor fatal reading");
  b.sys("diags_memory_fatal", "DIAG_0501", Component::Diags, "MEMDIAG",
        LocationKind::NodeCard, 0.3, "Memory diagnostic detected fatal fault");

  // --- System failures biased to idle hardware (49; the paper's
  //     "undetermined" codes — no job ever observed at their location) ---
  struct IdleFamily {
    const char* name_fmt;
    const char* msgid_fmt;
    Component comp;
    const char* sub;
    LocationKind kind;
    int count;
    double weight;
    const char* msg;
  };
  const IdleFamily families[] = {
      {"diags_lattice_fail_%02d", "DIAG_06%02d", Component::Diags, "LATTICE",
       LocationKind::NodeCard, 8, 0.10, "Diagnostic lattice test failure"},
      {"service_card_env_fatal_%02d", "CARD_08%02d", Component::Card, "PALOMINO_S",
       LocationKind::ServiceCard, 6, 0.10, "Service card environmental fatal"},
      {"link_channel_fatal_%02d", "CARD_09%02d", Component::Card, "LINKCARD",
       LocationKind::LinkCard, 8, 0.09, "Link channel fatal error"},
      {"mc_palomino_fatal_%02d", "MC_07%02d", Component::Mc, "PALOMINO",
       LocationKind::Rack, 6, 0.09, "Machine controller palomino fatal"},
      {"mmcs_db_fatal_%02d", "MMCS_08%02d", Component::Mmcs, "DB",
       LocationKind::Midplane, 5, 0.08, "MMCS database access fatal"},
      {"baremetal_svc_fatal_%02d", "BM_09%02d", Component::BareMetal, "SVC",
       LocationKind::ServiceCard, 6, 0.09, "Bare metal service fatal"},
      {"_bgp_err_boot_fatal_%02d", "KERN_10%02d", Component::Kernel, "BOOT",
       LocationKind::NodeCard, 10, 0.18, "Boot-time fatal detected on idle node"},
  };
  for (const auto& fam : families) {
    for (int i = 0; i < fam.count; ++i) {
      b.sys_idle(strformat(fam.name_fmt, i), strformat(fam.msgid_fmt, i), fam.comp, fam.sub,
                 fam.kind, fam.weight, fam.msg);
    }
  }

  // --- Non-fatal background codes (noise; §III-B severities) ---
  b.noise("ecc_correctable", "KERN_0101", Component::Kernel, "DDR", Severity::Warning,
          LocationKind::ComputeCard, 40.0, "ECC correctable single-symbol error");
  b.noise("ddr_single_symbol", "KERN_0102", Component::Kernel, "DDR", Severity::Warning,
          LocationKind::ComputeCard, 25.0, "DDR single symbol error corrected");
  b.noise("torus_retransmit", "KERN_0103", Component::Kernel, "CNS_TORUS", Severity::Info,
          LocationKind::ComputeCard, 18.0, "Torus packet retransmitted");
  b.noise("boot_progress", "MMCS_0101", Component::Mmcs, "BOOT", Severity::Info,
          LocationKind::Midplane, 30.0, "Block boot progress");
  b.noise("recovery_progress", "MMCS_0102", Component::Mmcs, "RECOV", Severity::Info,
          LocationKind::Midplane, 8.0, "Automatic recovery in progress");
  b.noise("redundant_psu_fail", "CARD_0103", Component::Card, "PALOMINO_P",
          Severity::Error, LocationKind::Rack, 2.0, "Redundant power supply failed");
  b.noise("ciod_retry", "KERN_0104", Component::Kernel, "CIOD", Severity::Warning,
          LocationKind::IoNode, 10.0, "CIOD operation retried");
  b.noise("gpfs_latency_warn", "KERN_0105", Component::Kernel, "CIOD", Severity::Warning,
          LocationKind::IoNode, 6.0, "File system latency above threshold");
  b.noise("ntp_drift", "BM_0102", Component::BareMetal, "NTP", Severity::Info,
          LocationKind::ServiceCard, 3.0, "Clock drift corrected");
  b.noise("env_temp_warn", "CARD_0104", Component::Card, "PALOMINO_S", Severity::Warning,
          LocationKind::ServiceCard, 5.0, "Temperature above warning threshold");
  b.noise("block_boot_info", "MMCS_0103", Component::Mmcs, "BOOT", Severity::Info,
          LocationKind::Midplane, 20.0, "Block boot step complete");
  b.noise("sn_failover_error", "MMCS_0104", Component::Mmcs, "CTRL", Severity::Error,
          LocationKind::Midplane, 1.5, "Service node failover error");

  entries_ = std::move(b.entries);
  index_entries();
}

Catalog::Catalog(std::vector<ErrcodeInfo> entries) : entries_(std::move(entries)) {
  index_entries();
}

void Catalog::index_entries() {
  fatal_ids_.clear();
  nonfatal_ids_.clear();
  by_name_.clear();
  by_name_.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto id = static_cast<ErrcodeId>(i);
    if (entries_[i].severity == Severity::Fatal) {
      fatal_ids_.push_back(id);
    } else {
      nonfatal_ids_.push_back(id);
    }
    by_name_.push_back(id);
  }
  std::sort(by_name_.begin(), by_name_.end(), [this](ErrcodeId a, ErrcodeId b) {
    return entries_[static_cast<std::size_t>(a)].name < entries_[static_cast<std::size_t>(b)].name;
  });
}

const Catalog& Catalog::instance() {
  static const Catalog catalog;
  return catalog;
}

const Catalog& default_catalog() { return Catalog::instance(); }

const ErrcodeInfo& Catalog::info(ErrcodeId id) const {
  CORAL_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < entries_.size());
  return entries_[static_cast<std::size_t>(id)];
}

std::optional<ErrcodeId> Catalog::find(std::string_view name) const {
  const auto it = std::lower_bound(
      by_name_.begin(), by_name_.end(), name, [this](ErrcodeId id, std::string_view key) {
        return std::string_view(entries_[static_cast<std::size_t>(id)].name) < key;
      });
  if (it == by_name_.end() || entries_[static_cast<std::size_t>(*it)].name != name) {
    return std::nullopt;
  }
  return *it;
}

int Catalog::application_error_count() const {
  int n = 0;
  for (ErrcodeId id : fatal_ids_) {
    if (info(id).nature == FaultNature::ApplicationError) ++n;
  }
  return n;
}

int Catalog::benign_count() const {
  int n = 0;
  for (ErrcodeId id : fatal_ids_) {
    if (info(id).impact == JobImpact::Benign) ++n;
  }
  return n;
}

}  // namespace coral::ras
