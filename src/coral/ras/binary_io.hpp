#pragma once

#include <iosfwd>

#include "coral/ras/log.hpp"

namespace coral::ras {

/// Compact binary serialization of a RasLog.
///
/// CSV round-trips of the 2M-record Intrepid log cost seconds and 300+ MB;
/// the binary format stores fixed 20-byte records (errcodes as catalog
/// names in a small dictionary, locations in their packed form) and loads
/// in tens of milliseconds. Format (little-endian):
///
///   magic "CRAS" | u32 version | u32 dictionary size | dictionary entries
///   (u16 length + bytes, index = ErrcodeId used in records) | u64 record
///   count | records { i64 time_usec, u32 packed_location, u32 dict_index,
///   u32 serial, u8 severity, 3 pad bytes }
///
/// The dictionary makes files self-describing: a log written with one
/// catalog build loads correctly even if catalog ordering changes.
void write_binary(std::ostream& out, const RasLog& log);

/// Load a binary RasLog, resolving dictionary names against `catalog`.
/// Throws ParseError on malformed input or unknown errcode names.
RasLog read_binary(std::istream& in, const Catalog& catalog = default_catalog());

}  // namespace coral::ras
