#pragma once

#include <iosfwd>
#include <string>

#include "coral/common/ingest.hpp"
#include "coral/common/zonemap.hpp"
#include "coral/ras/log.hpp"

namespace coral::par {
class ThreadPool;
}

namespace coral::ras {

/// Compact binary serialization of a RasLog (formats v2 and v3, both
/// block-framed over the CBLK layer in coral/common/binary_frame.hpp).
///
/// CSV round-trips of the 2M-record Intrepid log cost seconds and 300+ MB;
/// the binary formats store records in tens of MB and load in tens of
/// milliseconds.
///
/// v2 layout: a raw 8-byte file header (magic "CRAS" | u32 version = 2)
/// followed by CRC32-framed blocks. Block payloads carry a one-byte tag:
///
///   'D' dictionary: u32 size | entries (u16 length + bytes, index =
///       ErrcodeId used in records) | u64 total record count.
///       Written twice so a single damaged block cannot orphan the records.
///   'R' records: u32 count | count x { i64 time_usec, u32 packed_location,
///       u32 dict_index, u32 serial, u8 severity, 3 zero pad bytes },
///       at most 64 records per block to bound the blast radius of a
///       damaged frame.
///
/// v3 layout (version = 3 in the same 8-byte header): a compressed,
/// seekable, self-describing store. Tags, in writer-canonical order
/// 'M' 'M' 'D' 'D' 'L' 'L' then segments of 'C' blocks each closed by one
/// 'S' footer:
///
///   'M' meta x2: machine name | schema name ("ras.columnar.v3") |
///       u32 records per block | u8 flags (see common/storev3.hpp).
///   'D' dictionary x2: byte-identical payload to v2.
///   'L' location dictionary x2: u32 size | size x u32 distinct packed
///       location keys, in first-appearance order. Records reference keys
///       by index, so each key is validated against the machine model once
///       per file instead of once per record — the core of the v3 decode
///       speedup.
///   'C' column block: u32 count | 32-byte zone map (min/max time, folded
///       midplane bitmap, min/max key) | u8 codec (0 raw / 1 in-repo LZ) |
///       u32 raw size | body. The body is the 64-record block transposed
///       into columns: delta+zigzag-varint times, varint location indices,
///       varint dictionary indices, raw little-endian u32 serials (random
///       surrogates gain nothing from varints), raw severity bytes — then
///       byte-compressed. Count and zone map stay uncompressed so predicate
///       pushdown never touches rejected bodies.
///   'S' segment footer: u64 offset | u32 count | zone map per 'C' block of
///       the preceding segment. An appender just adds more 'C'+'S'
///       segments; readers rebuild the whole-file directory from footers.
///
/// Both dictionaries make files self-describing: a log written with one
/// catalog build loads correctly even if catalog ordering changes, and the
/// meta block names the machine model the keys belong to.
struct WriteOptions {
  std::uint32_t version = 3;  ///< 2 or 3
  /// v3: try the in-repo LZ codec per block, keeping whichever of
  /// raw/compressed is smaller.
  bool compress = true;
  /// v3: 'C' blocks per 'S' footer (the append/flush granularity).
  std::size_t blocks_per_segment = 256;
  /// Fan per-block encode + CRC over this pool; bytes are identical to the
  /// serial writer's. Null = serial.
  par::ThreadPool* pool = nullptr;
};

/// Write `log` in v2 format, serially — the layout every fleet peer
/// understands. Equivalent to write_binary(out, log, {.version = 2}).
void write_binary(std::ostream& out, const RasLog& log);
void write_binary(std::ostream& out, const RasLog& log, const WriteOptions& opts);

/// Read-side options; the zero-initialized default is a strict,
/// sequential, unfiltered read against the reference BG/P model.
struct ReadOptions {
  ParseMode mode = ParseMode::Strict;
  IngestReport* report = nullptr;
  InstrumentationSink* sink = nullptr;
  par::ThreadPool* pool = nullptr;
  const machine::MachineModel* machine = nullptr;  ///< null = bgp_model()
  /// Predicate pushdown: v3 blocks whose zone map cannot match are skipped
  /// without decompression (zero-touch when a segment footer covers them),
  /// and decoded records are exact-filtered, so the result equals a full
  /// read followed by the same record filter. v2 files decode fully and
  /// exact-filter. Skipped blocks still feed the record accounting, so
  /// strict totals and lenient damage counts are query-independent; what a
  /// predicate read does NOT do is CRC-verify blocks it never touches.
  bin::ReadPredicate predicate;
};

/// Load a binary RasLog (v2 or v3, auto-detected per block tag), resolving
/// dictionary names against `catalog`.
///
/// Strict mode throws ParseError (with the byte offset) on any damage.
/// Lenient mode drops damaged blocks, resynchronizes at the next block
/// marker, and skips-and-counts undecodable records into `report`; the
/// BinaryFrame counter ends up holding exactly the number of records lost
/// to frame damage (the dictionary's total record count makes the loss
/// computable even when the records themselves are unreadable) — at most
/// one block of records per damaged frame, in either version. With a
/// `sink`, an "ingest.ras_binary" stage sample, per-reason malformed
/// counters, and blocks_total/blocks_decoded/blocks_skipped pushdown
/// counters are recorded.
///
/// The input is buffered whole and frames are decoded in place. With a
/// `pool`, CRC verification and record decoding fan out across contiguous
/// block ranges — results (events, error messages, lenient accounting) are
/// identical to the sequential read; a file with any frame damage falls back
/// to the sequential recovering reader.
/// Packed locations are validated against the machine model; the returned
/// log is stamped with it.
RasLog read_binary(std::istream& in, const Catalog& catalog, const ReadOptions& opts);
RasLog read_binary(std::istream& in, const Catalog& catalog = default_catalog(),
                   ParseMode mode = ParseMode::Strict, IngestReport* report = nullptr,
                   InstrumentationSink* sink = nullptr, par::ThreadPool* pool = nullptr,
                   const machine::MachineModel& machine = machine::bgp_model());

/// read_binary over a memory-mapped file: the region is decoded in place
/// with zero copies (uncompressed payloads — v2 records, v3 raw-codec
/// bodies — are read straight from the mapped pages, and predicate reads
/// never fault in the pages of footer-covered skipped blocks). Falls back
/// to a buffered stream read when the platform cannot map the file.
RasLog read_binary_file(const std::string& path, const Catalog& catalog = default_catalog(),
                        const ReadOptions& opts = {});

}  // namespace coral::ras
