#pragma once

#include <iosfwd>

#include "coral/common/ingest.hpp"
#include "coral/ras/log.hpp"

namespace coral::par {
class ThreadPool;
}

namespace coral::ras {

/// Compact binary serialization of a RasLog (format v2, block-framed).
///
/// CSV round-trips of the 2M-record Intrepid log cost seconds and 300+ MB;
/// the binary format stores fixed 24-byte records (errcodes as catalog
/// names in a small dictionary, locations in their packed form) and loads
/// in tens of milliseconds.
///
/// v2 layout: a raw 8-byte file header (magic "CRAS" | u32 version = 2)
/// followed by CRC32-framed blocks (see coral/common/binary_frame.hpp).
/// Block payloads carry a one-byte tag:
///
///   'D' dictionary: u32 size | entries (u16 length + bytes, index =
///       ErrcodeId used in records) | u64 total record count.
///       Written twice so a single damaged block cannot orphan the records.
///   'R' records: u32 count | count x { i64 time_usec, u32 packed_location,
///       u32 dict_index, u32 serial, u8 severity, 3 zero pad bytes },
///       at most 64 records per block to bound the blast radius of a
///       damaged frame.
///
/// The dictionary makes files self-describing: a log written with one
/// catalog build loads correctly even if catalog ordering changes.
void write_binary(std::ostream& out, const RasLog& log);

/// Load a binary RasLog, resolving dictionary names against `catalog`.
///
/// Strict mode throws ParseError (with the byte offset) on any damage.
/// Lenient mode drops damaged blocks, resynchronizes at the next block
/// marker, and skips-and-counts undecodable records into `report`; the
/// BinaryFrame counter ends up holding exactly the number of records lost
/// to frame damage (the dictionary's total record count makes the loss
/// computable even when the records themselves are unreadable). With a
/// `sink`, an "ingest.ras_binary" stage sample plus per-reason malformed
/// counters are recorded.
///
/// The input is buffered whole and frames are decoded in place. With a
/// `pool`, CRC verification and record decoding fan out across contiguous
/// block ranges — results (events, error messages, lenient accounting) are
/// identical to the sequential read; a file with any frame damage falls back
/// to the sequential recovering reader.
/// Packed locations are validated against `machine`; the returned log is
/// stamped with that model.
RasLog read_binary(std::istream& in, const Catalog& catalog = default_catalog(),
                   ParseMode mode = ParseMode::Strict, IngestReport* report = nullptr,
                   InstrumentationSink* sink = nullptr, par::ThreadPool* pool = nullptr,
                   const machine::MachineModel& machine = machine::bgp_model());

}  // namespace coral::ras
