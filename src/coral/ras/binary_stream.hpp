#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/ingest.hpp"
#include "coral/ras/log.hpp"

namespace coral::ras {

/// Format internals of the binary-v2 RAS log (see binary_io.hpp for the
/// layout contract). Exposed so the one-shot file readers and the
/// incremental wire/session ingest path decode through the *same* routines —
/// the fleet parity guarantee (network feed == offline read, byte for byte)
/// rests on there being exactly one decode implementation.

inline constexpr char kRasMagic[4] = {'C', 'R', 'A', 'S'};
inline constexpr std::uint32_t kRasVersion = 2;
inline constexpr char kRasDictTag = 'D';
inline constexpr char kRasRecordTag = 'R';
/// Small blocks bound what one damaged frame can take with it: 64 records is
/// ~1.5 KB of payload, so the 12-byte frame header stays under 1% overhead
/// while a single bit flip in a 100k-record log costs at most 0.064% of it.
inline constexpr std::size_t kRasRecordsPerBlock = 64;

/// The fixed 24-byte on-disk record (golden byte layout pinned in
/// tests/test_binary_io.cpp; padding bytes are explicit zeros because
/// serialization memcpy's the struct).
struct PackedRecord {
  std::int64_t time_usec = 0;
  std::uint32_t packed_location = 0;
  std::uint32_t dict_index = 0;
  std::uint32_t serial = 0;
  std::uint8_t severity = 0;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(PackedRecord) == 24);

/// Decoded 'D' payload: dictionary remapped into the target catalog plus the
/// file's total record count. A name missing from the catalog stays nullopt
/// in strict-vs-lenient-neutral form; the caller decides whether to throw.
struct RasDictionary {
  std::vector<std::optional<ErrcodeId>> remap;
  std::uint64_t total_records = 0;
};

/// Parse a 'D' payload (cursor past the tag byte). Strict mode throws on a
/// dictionary name missing from `catalog`.
RasDictionary parse_ras_dictionary(bin::PayloadCursor& cur, const Catalog& catalog,
                                   ParseMode mode);

/// Decode one 'R' payload's records (cursor past the tag byte). `dict` may be
/// null only when every dictionary copy was lost earlier in the input.
/// `attempted` counts records decoded or individually rejected — the unit the
/// lost-record top-up is computed in.
void decode_ras_records(bin::PayloadCursor& cur, const RasDictionary* dict,
                        ParseMode mode, const machine::MachineModel& machine,
                        IngestReport& rep, std::vector<RasEvent>& events,
                        std::uint64_t& attempted);

/// Incremental binary-v2 RAS decoder: feed block payloads as they become
/// available (from a BlockReader, a FrameAssembler over a socket, a tailed
/// file); finish() runs the lost-record top-up and builds the log. Feeding
/// the payload sequence of an intact or damaged file reproduces the one-shot
/// reader's events and accounting exactly — read_binary's sequential path is
/// itself implemented on this class.
class RasStreamDecoder {
 public:
  RasStreamDecoder(const Catalog& catalog, ParseMode mode,
                   const machine::MachineModel& machine)
      : catalog_(&catalog), machine_(&machine), mode_(mode) {}

  /// Decode one block payload (tag byte + body) whose first byte sat at
  /// absolute offset `payload_offset`. Lenient mode absorbs undecodable
  /// payloads (their records are covered by the finish() top-up); strict
  /// mode throws.
  void on_payload(std::string_view payload, std::uint64_t payload_offset);

  /// Bound the event pre-reservation taken from the dictionary's declared
  /// total, so a corrupt count cannot force a huge allocation. File readers
  /// set this to what the region could physically hold; streaming callers
  /// keep the conservative default and let the vector grow.
  void set_reserve_cap(std::uint64_t cap) { reserve_cap_ = cap; }

  /// Records successfully decoded so far (live gauge for mid-run snapshots).
  std::uint64_t records_decoded() const { return events_.size(); }
  /// Records attempted (decoded or individually rejected) so far.
  std::uint64_t records_attempted() const { return attempted_; }
  /// The declared total from the dictionary, once one has been seen.
  std::optional<std::uint64_t> declared_total() const {
    return dict_ ? std::optional<std::uint64_t>(dict_->total_records) : std::nullopt;
  }

  /// End of stream: verify counts (strict) or top-up the BinaryFrame ledger
  /// with the exact number of records lost to dropped frames (lenient), fold
  /// the per-record accounting into `rep`, and build the finalized log.
  /// `frame_damage` carries the framing layer's per-stretch samples
  /// (adopted as diagnostics, never double-counted).
  RasLog finish(IngestReport& rep, const IngestReport& frame_damage);

 private:
  const Catalog* catalog_;
  const machine::MachineModel* machine_;
  ParseMode mode_;
  std::optional<RasDictionary> dict_;
  std::vector<RasEvent> events_;
  IngestReport record_rep_;  ///< per-record rejections, folded into finish()'s rep
  std::uint64_t attempted_ = 0;
  std::uint64_t reserve_cap_ = std::uint64_t{1} << 16;
};

}  // namespace coral::ras
