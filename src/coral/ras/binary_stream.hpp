#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/ingest.hpp"
#include "coral/common/storev3.hpp"
#include "coral/common/zonemap.hpp"
#include "coral/ras/log.hpp"

namespace coral::ras {

/// Format internals of the binary v2/v3 RAS log (see binary_io.hpp for the
/// layout contract). Exposed so the one-shot file readers and the
/// incremental wire/session ingest path decode through the *same* routines —
/// the fleet parity guarantee (network feed == offline read, byte for byte)
/// rests on there being exactly one decode implementation. The v3 tags
/// extend the v2 tag set rather than replacing it, so one decoder reads
/// both versions (and the session/daemon wire path inherits v3 for free).

inline constexpr char kRasMagic[4] = {'C', 'R', 'A', 'S'};
inline constexpr std::uint32_t kRasVersion = 2;
inline constexpr std::uint32_t kRasVersion3 = 3;
inline constexpr char kRasDictTag = 'D';
inline constexpr char kRasRecordTag = 'R';
/// v3 tags: self-describing meta, packed-location dictionary, columnar
/// record block, segment footer (see common/storev3.hpp for the shared
/// payload shapes).
inline constexpr char kRasMetaTag = 'M';
inline constexpr char kRasLocTag = 'L';
inline constexpr char kRasColumnTag = 'C';
inline constexpr char kRasSegmentTag = 'S';
inline constexpr std::string_view kRasSchemaV3 = "ras.columnar.v3";
/// Small blocks bound what one damaged frame can take with it: 64 records is
/// ~1.5 KB of payload, so the 12-byte frame header stays under 1% overhead
/// while a single bit flip in a 100k-record log costs at most 0.064% of it.
inline constexpr std::size_t kRasRecordsPerBlock = 64;

/// The fixed 24-byte on-disk record (golden byte layout pinned in
/// tests/test_binary_io.cpp; padding bytes are explicit zeros because
/// serialization memcpy's the struct).
struct PackedRecord {
  std::int64_t time_usec = 0;
  std::uint32_t packed_location = 0;
  std::uint32_t dict_index = 0;
  std::uint32_t serial = 0;
  std::uint8_t severity = 0;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(PackedRecord) == 24);

/// Decoded 'D' payload: dictionary remapped into the target catalog plus the
/// file's total record count. A name missing from the catalog stays nullopt
/// in strict-vs-lenient-neutral form; the caller decides whether to throw.
struct RasDictionary {
  std::vector<std::optional<ErrcodeId>> remap;
  std::uint64_t total_records = 0;
  /// True when every name resolved — the common case; per-record decode then
  /// skips the per-entry remap check (one less gather per record).
  bool all_mapped = true;
};

/// Parse a 'D' payload (cursor past the tag byte). Strict mode throws on a
/// dictionary name missing from `catalog`.
RasDictionary parse_ras_dictionary(bin::PayloadCursor& cur, const Catalog& catalog,
                                   ParseMode mode);

/// Decoded 'L' payload: the file's distinct packed location keys, each
/// validated against the machine model ONCE here instead of once per record
/// (v2's per-record virtual `location_from_packed` is the single hottest
/// cost of a full read). Lenient mode keeps invalid keys as flagged
/// entries; records referencing them are rejected individually.
struct RasLocDict {
  std::vector<std::uint32_t> keys;
  std::vector<machine::Location> locs;
  std::vector<char> valid;
  /// True when every key validated (always, in strict mode) — per-record
  /// decode then skips the per-entry validity gather.
  bool all_valid = true;
};

/// Parse an 'L' payload (cursor past the tag byte). Strict mode throws on a
/// key the machine model rejects.
RasLocDict parse_ras_loc_dict(bin::PayloadCursor& cur,
                              const machine::MachineModel& machine, ParseMode mode);

/// Decode one 'R' payload's records (cursor past the tag byte). `dict` may be
/// null only when every dictionary copy was lost earlier in the input.
/// `attempted` counts records decoded or individually rejected — the unit the
/// lost-record top-up is computed in. A non-null `filter` drops records that
/// fail the exact predicate *after* full validation (they still count as
/// attempted and ok, so accounting is layout-independent).
void decode_ras_records(bin::PayloadCursor& cur, const RasDictionary* dict,
                        ParseMode mode, const machine::MachineModel& machine,
                        IngestReport& rep, std::vector<RasEvent>& events,
                        std::uint64_t& attempted,
                        const bin::ZoneFilter* filter = nullptr);

/// Decoded column arrays of one v3 'C' block body. Severities alias the
/// body buffer (they are stored as raw bytes); serials memcpy from the
/// fixed-width tail; the other columns are materialized through the varint
/// codec.
struct RasColumns {
  std::vector<std::int64_t> times;
  std::vector<std::uint32_t> locs;
  std::vector<std::uint32_t> errs;
  std::vector<std::uint32_t> serials;
  const std::uint8_t* sevs = nullptr;
  /// Column maxima, tracked for free while the varint loops have each value
  /// in a register: three compares against these hoist the per-record
  /// validation out of an intact block's emit loop entirely.
  std::uint32_t max_loc = 0;
  std::uint32_t max_err = 0;
  std::uint8_t max_sev = 0;
};

/// All-or-nothing decode of a raw column body holding `n` records; false on
/// any malformed shape (truncated varint, wrong tail size). All-or-nothing
/// keeps lenient accounting block-granular: a damaged body loses the whole
/// block to the top-up, never a prefix of it.
bool decode_ras_columns(std::string_view body, std::uint32_t n, RasColumns& cols);

/// Build one complete 'C' payload (tag through body) for records
/// [events, events + n), whose per-event location-dictionary indices are
/// `loc_idx`. `raw` is caller-owned scratch (reused across blocks).
void encode_ras_column_block(std::string& payload, const RasEvent* events,
                             std::size_t n, const std::uint32_t* loc_idx,
                             bool compress, const machine::LocCodec& codec,
                             std::string& raw);

/// Reusable scratch for decoding 'C' payloads (one per thread), plus the
/// emit-side bookkeeping the adopting RasLog constructor wants: fatal
/// columns gathered as records are emitted (log_index is the emit position
/// in the caller's event vector) and a running time-order check. Both cost
/// a couple of register ops per record here versus a second full pass over
/// the event array in finalize(). Callers that interleave chunks through
/// one scratch move `fatal`/`sorted` out and reset between chunks.
struct RasV3Scratch {
  std::string raw;
  RasColumns cols;
  FatalColumns fatal;
  std::int64_t last_time = std::numeric_limits<std::int64_t>::min();
  bool sorted = true;
};

/// Decode one 'C' payload (cursor past the tag byte) — the single v3 record
/// decode implementation, shared by the stream decoder and the parallel
/// file reader. Zone-rejected blocks (non-null `filter`) contribute their
/// declared count to `attempted` without touching the body. Throws
/// ParseError on any malformed shape in either mode; lenient callers catch
/// and let the lost-record top-up cover the block.
void decode_ras_column_payload(bin::PayloadCursor& cur, const RasDictionary* dict,
                               const RasLocDict* locs, ParseMode mode,
                               const bin::ZoneFilter* filter, IngestReport& rep,
                               std::vector<RasEvent>& events,
                               std::uint64_t& attempted, bin::BlockCounters& blocks,
                               RasV3Scratch& scratch);

/// Incremental binary v2/v3 RAS decoder: feed block payloads as they become
/// available (from a BlockReader, a FrameAssembler over a socket, a tailed
/// file); finish() runs the lost-record top-up and builds the log. Feeding
/// the payload sequence of an intact or damaged file reproduces the one-shot
/// reader's events and accounting exactly — read_binary's sequential path is
/// itself implemented on this class. The v2 and v3 tag sets are disjoint,
/// so no version switch is needed: a stream is whatever its blocks say.
class RasStreamDecoder {
 public:
  RasStreamDecoder(const Catalog& catalog, ParseMode mode,
                   const machine::MachineModel& machine)
      : catalog_(&catalog), machine_(&machine), mode_(mode) {}

  /// Install a pushdown predicate: zone-rejected v3 blocks are skipped
  /// without decoding, and decoded records are exact-filtered. Null (the
  /// default) decodes everything. The filter must outlive the decoder.
  void set_filter(const bin::ZoneFilter* filter) { filter_ = filter; }

  /// Decode one block payload (tag byte + body) whose first byte sat at
  /// absolute offset `payload_offset`. Lenient mode absorbs undecodable
  /// payloads (their records are covered by the finish() top-up); strict
  /// mode throws.
  void on_payload(std::string_view payload, std::uint64_t payload_offset);

  /// Bound the event pre-reservation taken from the dictionary's declared
  /// total, so a corrupt count cannot force a huge allocation. File readers
  /// set this to what the region could physically hold; streaming callers
  /// keep the conservative default and let the vector grow.
  void set_reserve_cap(std::uint64_t cap) { reserve_cap_ = cap; }

  /// Records successfully decoded so far (live gauge for mid-run snapshots).
  std::uint64_t records_decoded() const { return events_.size(); }
  /// Decoded events so far, in decode order — the live tap online consumers
  /// (the session's prediction stage) read new records from between pumps.
  /// Invalidated by finish(), which moves the events into the built log.
  const std::vector<RasEvent>& events_so_far() const { return events_; }
  /// Records attempted (decoded or individually rejected) so far.
  std::uint64_t records_attempted() const { return attempted_; }
  /// The declared total from the dictionary, once one has been seen.
  std::optional<std::uint64_t> declared_total() const {
    return dict_ ? std::optional<std::uint64_t>(dict_->total_records) : std::nullopt;
  }
  /// Record-block accounting (total / decoded / zone-skipped), the source
  /// of the ingest.ras_binary.blocks_* obs counters.
  const bin::BlockCounters& block_counters() const { return blocks_; }
  /// The 'M' meta block, once one has been seen (v3 streams only).
  const std::optional<bin::StoreMeta>& meta() const { return meta_; }

  /// End of stream: verify counts (strict) or top-up the BinaryFrame ledger
  /// with the exact number of records lost to dropped frames (lenient), fold
  /// the per-record accounting into `rep`, and build the finalized log.
  /// `frame_damage` carries the framing layer's per-stretch samples
  /// (adopted as diagnostics, never double-counted).
  RasLog finish(IngestReport& rep, const IngestReport& frame_damage);

 private:
  const Catalog* catalog_;
  const machine::MachineModel* machine_;
  ParseMode mode_;
  const bin::ZoneFilter* filter_ = nullptr;
  std::optional<RasDictionary> dict_;
  std::optional<bin::StoreMeta> meta_;
  std::optional<RasLocDict> loc_dict_;
  std::vector<RasEvent> events_;
  IngestReport record_rep_;  ///< per-record rejections, folded into finish()'s rep
  std::uint64_t attempted_ = 0;
  std::uint64_t reserve_cap_ = std::uint64_t{1} << 16;
  bin::BlockCounters blocks_;
  RasV3Scratch scratch_;
  /// v2 'R' blocks emit outside the columnar path, so their records are not
  /// in scratch_'s fatal gather — finish() then takes the verify walk.
  bool saw_v2_records_ = false;
};

}  // namespace coral::ras
