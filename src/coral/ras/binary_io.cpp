#include "coral/ras/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <istream>
#include <iterator>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string_view>
#include <unordered_map>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/common/parallel.hpp"
#include "coral/common/storev3.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/binary_stream.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CORAL_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace coral::ras {

namespace {

/// An istream over an in-memory region, so the recovering BlockReader can
/// run on the already-buffered file without copying it.
struct ViewBuf : std::streambuf {
  explicit ViewBuf(std::string_view v) {
    char* p = const_cast<char*>(v.data());
    setg(p, p, p + v.size());
  }
};

// The reference reader: the recovering BlockReader walked front to back,
// feeding the shared incremental decoder — the same class the fleet
// session/wire path runs, which is what makes network ingest byte-identical
// to offline reads. Handles every damage shape and both format versions,
// and defines the exact error messages and lenient accounting the parallel
// fast paths must reproduce.
RasLog read_region_sequential(std::string_view region, const Catalog& catalog,
                              ParseMode mode, const machine::MachineModel& machine,
                              IngestReport& rep, const bin::ZoneFilter* filter,
                              bin::BlockCounters& blocks, std::size_t reserve_div) {
  ViewBuf viewbuf(region);
  std::istream in(&viewbuf);

  // Frame damage is tracked in a side report: one sample per damaged
  // stretch, while the caller-visible BinaryFrame *count* is computed in
  // finish() as the exact number of records lost (the dictionary carries
  // the total).
  IngestReport frames;
  bin::BlockReader reader(in, mode, &frames, "binary RAS log");

  RasStreamDecoder decoder(catalog, mode, machine);
  // Pre-size from the declared total, capped by what the region could
  // physically hold so a corrupt count cannot force a huge allocation
  // (v3 blocks compress, so their floor is a few bytes per record).
  decoder.set_reserve_cap(region.size() / reserve_div);
  decoder.set_filter(filter);
  std::string payload;
  while (reader.next(payload)) {
    decoder.on_payload(payload, reader.block_offset() + bin::kBlockHeaderBytes);
  }
  RasLog log = decoder.finish(rep, frames);
  blocks = decoder.block_counters();
  return log;
}

struct ChunkOut {
  std::vector<RasEvent> events;
  IngestReport rep;
  std::uint64_t attempted = 0;
  bin::BlockCounters blocks;
  FatalColumns fatal;      ///< v3: fatal gather from emit; log_index is chunk-local
  bool sorted = true;      ///< v3: chunk-local time order held at emit
  bool damaged = false;    ///< lenient CRC failure: whole read falls back
  std::string error;       ///< strict: first error in block order
  bool has_error = false;
};

/// Merge per-chunk results in chunk (== input) order into the caller's
/// report and the output event vector.
std::uint64_t merge_chunks(std::vector<ChunkOut>& outs, std::vector<RasEvent>& events,
                           IngestReport& rep, bin::BlockCounters& blocks) {
  std::uint64_t attempted = 0;
  if (outs.size() == 1) {
    events = std::move(outs[0].events);
    rep.merge(outs[0].rep);
    blocks.merge(outs[0].blocks);
    return outs[0].attempted;
  }
  std::size_t total = 0;
  for (const ChunkOut& out : outs) total += out.events.size();
  events.reserve(total);
  for (ChunkOut& out : outs) {
    // Chunks assign RECIDs from their local emit position; rebase onto the
    // global sequence so the TrustedRecids finalize sees 1..N.
    const auto base = static_cast<std::int64_t>(events.size());
    events.insert(events.end(), std::make_move_iterator(out.events.begin()),
                  std::make_move_iterator(out.events.end()));
    if (base != 0) {
      for (std::size_t i = events.size() - out.events.size(); i < events.size(); ++i) {
        events[i].recid += base;
      }
    }
    rep.merge(out.rep);  // chunk order == offset order: samples stay sorted
    blocks.merge(out.blocks);
    attempted += out.attempted;
  }
  return attempted;
}

std::size_t chunk_count(std::size_t nblocks, par::ThreadPool& pool) {
  // 4 chunks per thread for load balance; a single-thread pool gets one
  // chunk so the merge is a plain move.
  return pool.thread_count() <= 1
             ? 1
             : std::max<std::size_t>(1, std::min(nblocks, pool.thread_count() * 4));
}

// The v2 fast path: the dictionary lives in block 0, every other block is
// decoded independently across contiguous block ranges. Any framing anomaly
// defers to the sequential reader, which is the authority on recovery; the
// caller's report is only touched on a committed parallel result, so the
// fallback starts clean.
template <typename FallBack>
RasLog read_region_parallel_v2(std::string_view region,
                               const std::vector<bin::FrameRef>& frames,
                               const Catalog& catalog, ParseMode mode,
                               const machine::MachineModel& machine, IngestReport& rep,
                               par::ThreadPool& pool, const bin::ZoneFilter* filter,
                               bin::BlockCounters& blocks, const FallBack& fall_back) {
  const char* base = region.data();

  // Block 0 carries the dictionary, so any error in it — CRC or content — is
  // also the sequential reader's first error; order is preserved by handling
  // it before the fan-out.
  const bin::FrameRef& f0 = frames[0];
  const char* dict_payload = base + f0.offset + bin::kBlockHeaderBytes;
  if (bin::crc32(dict_payload, f0.size) != f0.crc) {
    if (mode == ParseMode::Strict) {
      throw ParseError("binary RAS log: block CRC mismatch at byte offset " +
                       std::to_string(f0.offset));
    }
    return fall_back();  // the redundant copy may still be intact
  }
  RasDictionary dict;
  {
    bin::PayloadCursor cur(std::string_view(dict_payload, f0.size),
                           f0.offset + bin::kBlockHeaderBytes, "binary RAS log");
    try {
      cur.get<char>();  // tag, known to be 'D'
      dict = parse_ras_dictionary(cur, catalog, mode);
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      return fall_back();  // sequential skips the block, second copy serves
    }
  }

  const std::size_t nblocks = frames.size() - 1;
  const std::size_t chunks = chunk_count(nblocks, pool);
  std::vector<ChunkOut> outs(chunks);

  par::parallel_for_chunks(
      chunks, 1,
      [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          ChunkOut& out = outs[c];
          const std::size_t fb = 1 + c * nblocks / chunks;
          const std::size_t fe = 1 + (c + 1) * nblocks / chunks;
          out.events.reserve((fe - fb) * kRasRecordsPerBlock);
          for (std::size_t f = fb; f < fe; ++f) {
            const bin::FrameRef& fr = frames[f];
            const char* payload = base + fr.offset + bin::kBlockHeaderBytes;
            if (bin::crc32(payload, fr.size) != fr.crc) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = "binary RAS log: block CRC mismatch at byte offset " +
                            std::to_string(fr.offset);
              } else {
                out.damaged = true;
              }
              break;
            }
            bin::PayloadCursor cur(std::string_view(payload, fr.size),
                                   fr.offset + bin::kBlockHeaderBytes, "binary RAS log");
            try {
              const char tag = cur.get<char>();
              if (tag == kRasDictTag) {
                parse_ras_dictionary(cur, catalog, mode);  // redundant copy
                continue;
              }
              if (tag != kRasRecordTag) {
                if (mode == ParseMode::Strict) {
                  throw ParseError("unknown block tag in binary RAS log at byte offset " +
                                   std::to_string(fr.offset));
                }
                continue;
              }
              ++out.blocks.total;
              decode_ras_records(cur, &dict, mode, machine, out.rep, out.events,
                                 out.attempted, filter);
              ++out.blocks.decoded;
            } catch (const Error& e) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = e.what();
                break;
              }
              // Lenient: CRC-valid block that still fails to parse — skip
              // it, the lost-record top-up accounts for its records.
            }
          }
        }
      },
      &pool);

  if (mode == ParseMode::Strict) {
    // Chunks cover contiguous, ascending block ranges and each stopped at
    // its first error, so the earliest chunk's capture is the input-order
    // first error — exactly what the sequential reader would have thrown.
    for (const ChunkOut& out : outs) {
      if (out.has_error) throw ParseError(out.error);
    }
  } else {
    for (const ChunkOut& out : outs) {
      if (out.damaged) return fall_back();
    }
  }

  std::vector<RasEvent> events;
  const std::uint64_t attempted = merge_chunks(outs, events, rep, blocks);

  if (mode == ParseMode::Strict) {
    if (attempted != dict.total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict.total_records) + ", got " +
                       std::to_string(attempted));
    }
  } else if (dict.total_records > attempted) {
    rep.add_malformed_bulk(IngestReason::BinaryFrame, dict.total_records - attempted);
  }

  return RasLog(std::move(events), catalog, machine, RasLog::TrustedRecids{});
}

// The v3 fast path: parse the writer-canonical metadata prefix
// ('M' 'M' 'D' 'D' 'L' 'L') in order, rebuild the block directory from the
// 'S' segment footers, then fan the 'C' blocks out. Under a predicate,
// blocks whose footer entry zone-rejects are skipped without touching their
// payload bytes at all (the mmap zero-copy win); blocks without a footer
// entry (an appender's unsealed tail) fall back to the in-block zone map.
// Any deviation from the canonical shape defers to the sequential reader.
template <typename FallBack>
RasLog read_region_parallel_v3(std::string_view region,
                               const std::vector<bin::FrameRef>& frames,
                               const Catalog& catalog, ParseMode mode,
                               const machine::MachineModel& machine, IngestReport& rep,
                               par::ThreadPool& pool, const bin::ZoneFilter* filter,
                               bin::BlockCounters& blocks, const FallBack& fall_back) {
  const char* base = region.data();
  const auto tag_of = [&](const bin::FrameRef& f) {
    return base[f.offset + bin::kBlockHeaderBytes];
  };

  static constexpr char kPrefix[6] = {kRasMetaTag, kRasMetaTag, kRasDictTag,
                                      kRasDictTag, kRasLocTag,  kRasLocTag};
  if (frames.size() < 6) return fall_back();
  for (std::size_t i = 0; i < 6; ++i) {
    if (tag_of(frames[i]) != kPrefix[i]) return fall_back();
  }

  std::optional<RasDictionary> dict;
  std::optional<RasLocDict> locs;
  for (std::size_t i = 0; i < 6; ++i) {
    const bin::FrameRef& fr = frames[i];
    const char* payload = base + fr.offset + bin::kBlockHeaderBytes;
    if (bin::crc32(payload, fr.size) != fr.crc) {
      // The prefix blocks are the stream's first blocks, so a strict CRC
      // throw here is the sequential reader's first error too.
      if (mode == ParseMode::Strict) {
        throw ParseError("binary RAS log: block CRC mismatch at byte offset " +
                         std::to_string(fr.offset));
      }
      return fall_back();  // the redundant copy may still be intact
    }
    bin::PayloadCursor cur(std::string_view(payload, fr.size),
                           fr.offset + bin::kBlockHeaderBytes, "binary RAS log");
    try {
      const char tag = cur.get<char>();
      if (tag == kRasMetaTag) {
        const bin::StoreMeta meta = bin::parse_store_meta(cur);
        if (meta.machine != machine.name() && mode == ParseMode::Strict) {
          throw ParseError("binary RAS log written for machine '" + meta.machine +
                           "' but read with model '" + std::string(machine.name()) +
                           "'");
        }
      } else if (tag == kRasDictTag) {
        RasDictionary d = parse_ras_dictionary(cur, catalog, mode);
        if (!dict) dict = std::move(d);
      } else {
        RasLocDict l = parse_ras_loc_dict(cur, machine, mode);
        if (!locs) locs = std::move(l);
      }
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      return fall_back();
    }
  }

  // Classify body frames and rebuild the directory from segment footers.
  std::vector<const bin::FrameRef*> cframes;
  std::vector<bin::SegmentEntry> dir;
  for (std::size_t i = 6; i < frames.size(); ++i) {
    const bin::FrameRef& fr = frames[i];
    const char t = tag_of(fr);
    if (t == kRasColumnTag) {
      cframes.push_back(&fr);
      continue;
    }
    if (t != kRasSegmentTag) return fall_back();
    const char* payload = base + fr.offset + bin::kBlockHeaderBytes;
    if (bin::crc32(payload, fr.size) != fr.crc) return fall_back();
    bin::PayloadCursor cur(std::string_view(payload, fr.size),
                           fr.offset + bin::kBlockHeaderBytes, "binary RAS log");
    try {
      cur.get<char>();  // tag
      bin::parse_segment_footer(cur, dir);
    } catch (const Error&) {
      return fall_back();
    }
  }
  // The offset directory only pays for itself under a predicate (zero-touch
  // skips); an unfiltered read never probes it, so skip the build.
  std::unordered_map<std::uint64_t, const bin::SegmentEntry*> dir_at;
  if (filter != nullptr) {
    dir_at.reserve(dir.size());
    for (const bin::SegmentEntry& e : dir) dir_at.emplace(e.offset, &e);
  }

  const std::size_t nblocks = cframes.size();
  const std::size_t chunks = std::max<std::size_t>(1, chunk_count(nblocks, pool));
  std::vector<ChunkOut> outs(chunks);

  par::parallel_for_chunks(
      chunks, 1,
      [&](std::size_t cb, std::size_t ce) {
        RasV3Scratch scratch;
        for (std::size_t c = cb; c < ce; ++c) {
          ChunkOut& out = outs[c];
          const std::size_t fb = c * nblocks / chunks;
          const std::size_t fe = (c + 1) * nblocks / chunks;
          out.events.reserve((fe - fb) * kRasRecordsPerBlock);
          for (std::size_t f = fb; f < fe; ++f) {
            const bin::FrameRef& fr = *cframes[f];
            if (filter != nullptr) {
              const auto it = dir_at.find(fr.offset);
              if (it != dir_at.end() && !filter->may_match(it->second->zone)) {
                // Footer-covered and zone-rejected: zero-touch skip — the
                // payload bytes (and their mmap pages) are never read.
                out.attempted += it->second->count;
                ++out.blocks.total;
                ++out.blocks.skipped;
                continue;
              }
            }
            const char* payload = base + fr.offset + bin::kBlockHeaderBytes;
            if (bin::crc32(payload, fr.size) != fr.crc) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = "binary RAS log: block CRC mismatch at byte offset " +
                            std::to_string(fr.offset);
              } else {
                out.damaged = true;
              }
              break;
            }
            bin::PayloadCursor cur(std::string_view(payload, fr.size),
                                   fr.offset + bin::kBlockHeaderBytes, "binary RAS log");
            try {
              cur.get<char>();  // tag, known to be 'C'
              decode_ras_column_payload(cur, &*dict, &*locs, mode, filter, out.rep,
                                        out.events, out.attempted, out.blocks, scratch);
            } catch (const Error& e) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = e.what();
                break;
              }
            }
          }
          // The scratch is shared across this worker's chunks; snapshot its
          // emit bookkeeping into the chunk and reset for the next one.
          out.fatal = std::move(scratch.fatal);
          scratch.fatal = FatalColumns{};
          out.sorted = scratch.sorted;
          scratch.sorted = true;
          scratch.last_time = std::numeric_limits<std::int64_t>::min();
        }
      },
      &pool);

  if (mode == ParseMode::Strict) {
    for (const ChunkOut& out : outs) {
      if (out.has_error) throw ParseError(out.error);
    }
  } else {
    for (const ChunkOut& out : outs) {
      if (out.damaged) return fall_back();
    }
  }

  // Chunk sizes before the merge moves the event vectors: they place the
  // chunk-local fatal log_index values (and the boundary order checks) on
  // the global event array.
  std::vector<std::size_t> sizes;
  sizes.reserve(outs.size());
  bool sorted = true;
  for (const ChunkOut& out : outs) {
    sizes.push_back(out.events.size());
    sorted = sorted && out.sorted;
  }

  std::vector<RasEvent> events;
  const std::uint64_t attempted = merge_chunks(outs, events, rep, blocks);

  if (mode == ParseMode::Strict) {
    if (attempted != dict->total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict->total_records) + ", got " +
                       std::to_string(attempted));
    }
  } else if (dict->total_records > attempted) {
    rep.add_malformed_bulk(IngestReason::BinaryFrame, dict->total_records - attempted);
  }

  // Each chunk verified its own order; the seams between chunks are the only
  // unchecked pairs.
  if (sorted) {
    std::size_t at = 0;
    for (std::size_t c = 0; c + 1 < sizes.size() && sorted; ++c) {
      at += sizes[c];
      if (at > 0 && at < events.size() &&
          events[at].event_time < events[at - 1].event_time) {
        sorted = false;
      }
    }
  }
  RasLog::TrustedParts parts;
  parts.sorted = sorted;
  if (sorted) {
    if (outs.size() == 1) {
      parts.fatal = std::move(outs[0].fatal);
    } else {
      std::size_t nfatal = 0;
      for (const ChunkOut& out : outs) nfatal += out.fatal.size();
      parts.fatal.event_time.reserve(nfatal);
      parts.fatal.errcode.reserve(nfatal);
      parts.fatal.loc_key.reserve(nfatal);
      parts.fatal.log_index.reserve(nfatal);
      std::size_t ebase = 0;
      for (std::size_t c = 0; c < outs.size(); ++c) {
        const FatalColumns& f = outs[c].fatal;
        parts.fatal.event_time.insert(parts.fatal.event_time.end(),
                                      f.event_time.begin(), f.event_time.end());
        parts.fatal.errcode.insert(parts.fatal.errcode.end(), f.errcode.begin(),
                                   f.errcode.end());
        parts.fatal.loc_key.insert(parts.fatal.loc_key.end(), f.loc_key.begin(),
                                   f.loc_key.end());
        for (const std::size_t idx : f.log_index) {
          parts.fatal.log_index.push_back(idx + ebase);
        }
        ebase += sizes[c];
      }
    }
  }
  return RasLog(std::move(events), catalog, machine, std::move(parts));
}

// Index the region and dispatch on the first block's tag ('D' = v2,
// 'M' = v3); anything else is the sequential recovering reader's problem.
RasLog read_region_parallel(std::string_view region, const Catalog& catalog,
                            ParseMode mode, const machine::MachineModel& machine,
                            IngestReport& rep, par::ThreadPool& pool,
                            const bin::ZoneFilter* filter, bin::BlockCounters& blocks,
                            std::size_t reserve_div) {
  const auto fall_back = [&] {
    blocks = bin::BlockCounters{};
    return read_region_sequential(region, catalog, mode, machine, rep, filter, blocks,
                                  reserve_div);
  };

  std::vector<bin::FrameRef> frames;
  if (!bin::index_frames(region, frames) || frames.empty()) return fall_back();
  const char first = region[frames[0].offset + bin::kBlockHeaderBytes];
  if (first == kRasDictTag) {
    return read_region_parallel_v2(region, frames, catalog, mode, machine, rep, pool,
                                   filter, blocks, fall_back);
  }
  if (first == kRasMetaTag) {
    return read_region_parallel_v3(region, frames, catalog, mode, machine, rep, pool,
                                   filter, blocks, fall_back);
  }
  return fall_back();
}

std::string slurp(std::istream& in) {
  std::string buf;
  // Pre-size from the stream length when it is seekable (files, stringstreams).
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end > pos) {
      buf.reserve(static_cast<std::size_t>(end - pos));
    }
  }
  constexpr std::size_t kChunk = 1 << 20;
  for (;;) {
    const std::size_t old = buf.size();
    buf.resize(old + kChunk);
    in.read(buf.data() + old, static_cast<std::streamsize>(kChunk));
    const auto got = static_cast<std::size_t>(in.gcount());
    buf.resize(old + got);
    if (got < kChunk) break;
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Writers

template <typename T>
void append_raw(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

std::string build_dict_payload(const RasLog& log) {
  std::string p;
  p.push_back(kRasDictTag);
  const Catalog& catalog = log.catalog();
  append_raw(p, static_cast<std::uint32_t>(catalog.size()));
  for (const ErrcodeInfo& info : catalog.all()) {
    append_raw(p, static_cast<std::uint16_t>(info.name.size()));
    p.append(info.name);
  }
  append_raw(p, static_cast<std::uint64_t>(log.size()));
  return p;
}

void encode_v2_block(std::string& payload, const RasLog& log, std::size_t base,
                     std::size_t n) {
  payload.push_back(kRasRecordTag);
  append_raw(payload, static_cast<std::uint32_t>(n));
  for (std::size_t i = base; i < base + n; ++i) {
    const RasEvent& ev = log[i];
    PackedRecord rec;
    rec.time_usec = ev.event_time.usec();
    rec.packed_location = ev.location.packed();
    rec.dict_index = static_cast<std::uint32_t>(ev.errcode);
    rec.serial = ev.serial;
    rec.severity = static_cast<std::uint8_t>(ev.severity);
    payload.append(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
}

/// Frame blocks [block_begin, block_end) into per-block byte strings, fanned
/// over the pool when one is given. `encode` appends one block's complete
/// payload (tag through body); framing (size + CRC) is deterministic, so
/// parallel output is byte-identical to serial.
template <typename Encode>
void frame_blocks(std::vector<std::string>& framed, std::size_t block_begin,
                  std::size_t block_end, par::ThreadPool* pool, const Encode& encode) {
  const std::size_t nb = block_end - block_begin;
  framed.resize(nb);
  const std::size_t chunks =
      pool == nullptr || pool->thread_count() <= 1
          ? 1
          : std::max<std::size_t>(1, std::min(nb, pool->thread_count() * 4));
  par::parallel_for_chunks(
      chunks, 1,
      [&](std::size_t cb, std::size_t ce) {
        std::string payload;
        for (std::size_t c = cb; c < ce; ++c) {
          const std::size_t bb = block_begin + c * nb / chunks;
          const std::size_t be = block_begin + (c + 1) * nb / chunks;
          for (std::size_t b = bb; b < be; ++b) {
            payload.clear();
            encode(payload, b);
            std::string& out = framed[b - block_begin];
            out.clear();
            bin::append_frame(out, payload);
          }
        }
      },
      pool);
}

void write_v2(std::ostream& out, const RasLog& log, par::ThreadPool* pool) {
  out.write(kRasMagic, sizeof kRasMagic);
  out.write(reinterpret_cast<const char*>(&kRasVersion), sizeof kRasVersion);

  // Dictionary: every catalog errcode name, indexed by ErrcodeId. Written
  // twice so one damaged frame cannot make every record undecodable.
  const std::string dict = build_dict_payload(log);
  std::string head;
  bin::append_frame(head, dict);
  bin::append_frame(head, dict);
  out.write(head.data(), static_cast<std::streamsize>(head.size()));

  const std::size_t nblocks = (log.size() + kRasRecordsPerBlock - 1) / kRasRecordsPerBlock;
  // Encode in bounded batches so peak memory stays a slice of the file, not
  // a full copy of it.
  constexpr std::size_t kBatchBlocks = 4096;
  std::vector<std::string> framed;
  for (std::size_t batch = 0; batch < nblocks; batch += kBatchBlocks) {
    const std::size_t batch_end = std::min(nblocks, batch + kBatchBlocks);
    frame_blocks(framed, batch, batch_end, pool,
                 [&](std::string& payload, std::size_t b) {
                   const std::size_t base = b * kRasRecordsPerBlock;
                   encode_v2_block(payload, log, base,
                                   std::min(kRasRecordsPerBlock, log.size() - base));
                 });
    for (const std::string& f : framed) {
      out.write(f.data(), static_cast<std::streamsize>(f.size()));
    }
  }
}

void write_v3(std::ostream& out, const RasLog& log, const WriteOptions& opts) {
  const machine::MachineModel& machine = log.machine();
  out.write(kRasMagic, sizeof kRasMagic);
  out.write(reinterpret_cast<const char*>(&kRasVersion3), sizeof kRasVersion3);

  // Location dictionary: distinct packed keys in first-appearance order,
  // plus each event's index into it.
  std::vector<std::uint32_t> keys;
  std::vector<std::uint32_t> loc_idx(log.size());
  {
    std::unordered_map<std::uint32_t, std::uint32_t> index;
    for (std::size_t i = 0; i < log.size(); ++i) {
      const std::uint32_t key = log[i].location.packed();
      const auto [it, inserted] =
          index.try_emplace(key, static_cast<std::uint32_t>(keys.size()));
      if (inserted) keys.push_back(key);
      loc_idx[i] = it->second;
    }
  }

  std::string meta_payload;
  meta_payload.push_back(kRasMetaTag);
  bin::append_store_meta(
      meta_payload,
      bin::StoreMeta{std::string(machine.name()), std::string(kRasSchemaV3),
                     static_cast<std::uint32_t>(kRasRecordsPerBlock),
                     opts.compress ? bin::kStoreFlagCompressed : std::uint8_t{0}});
  const std::string dict_payload = build_dict_payload(log);
  std::string loc_payload;
  loc_payload.push_back(kRasLocTag);
  append_raw(loc_payload, static_cast<std::uint32_t>(keys.size()));
  for (const std::uint32_t key : keys) append_raw(loc_payload, key);

  std::string head;
  bin::append_frame(head, meta_payload);
  bin::append_frame(head, meta_payload);
  bin::append_frame(head, dict_payload);
  bin::append_frame(head, dict_payload);
  bin::append_frame(head, loc_payload);
  bin::append_frame(head, loc_payload);
  out.write(head.data(), static_cast<std::streamsize>(head.size()));

  // Offsets in segment footers count from the end of the 8-byte file
  // header, like every other offset the readers report.
  std::uint64_t offset = head.size();
  const std::size_t bps = std::max<std::size_t>(1, opts.blocks_per_segment);
  const std::size_t nblocks = (log.size() + kRasRecordsPerBlock - 1) / kRasRecordsPerBlock;
  std::vector<bin::SegmentEntry> seg;
  seg.reserve(bps);
  const auto flush_segment = [&] {
    std::string footer;
    footer.push_back(kRasSegmentTag);
    bin::append_segment_footer(footer, seg);
    std::string framed_footer;
    bin::append_frame(framed_footer, footer);
    out.write(framed_footer.data(), static_cast<std::streamsize>(framed_footer.size()));
    offset += framed_footer.size();
    seg.clear();
  };

  constexpr std::size_t kBatchBlocks = 4096;
  std::vector<std::string> framed;
  for (std::size_t batch = 0; batch < nblocks; batch += kBatchBlocks) {
    const std::size_t batch_end = std::min(nblocks, batch + kBatchBlocks);
    frame_blocks(framed, batch, batch_end, opts.pool,
                 [&](std::string& payload, std::size_t b) {
                   const std::size_t base = b * kRasRecordsPerBlock;
                   const std::size_t n =
                       std::min(kRasRecordsPerBlock, log.size() - base);
                   // Per-thread scratch would save allocations, but encode is
                   // dominated by varint/LZ work; a local string is simpler.
                   std::string raw;
                   encode_ras_column_block(payload, &log[base], n,
                                           loc_idx.data() + base, opts.compress,
                                           machine.codec(), raw);
                 });
    for (std::size_t b = batch; b < batch_end; ++b) {
      const std::string& f = framed[b - batch];
      out.write(f.data(), static_cast<std::streamsize>(f.size()));
      // The footer repeats the block's count and zone map; both sit at
      // fixed offsets in the payload we just framed.
      bin::SegmentEntry entry;
      entry.offset = offset;
      std::uint32_t count = 0;
      std::memcpy(&count, f.data() + bin::kBlockHeaderBytes + 1, sizeof count);
      entry.count = count;
      std::size_t pos = 0;
      bin::read_zone_map(
          std::string_view(f).substr(bin::kBlockHeaderBytes + 1 + sizeof count),
          pos, entry.zone);
      seg.push_back(entry);
      offset += f.size();
      if (seg.size() >= bps) flush_segment();
    }
  }
  if (!seg.empty()) flush_segment();
}

// ---------------------------------------------------------------------------
// Read entry points

RasLog read_view(std::string_view buffer, const Catalog& catalog,
                 const ReadOptions& opts) {
  IngestReport local;
  IngestReport& rep = opts.report != nullptr ? *opts.report : local;
  const machine::MachineModel& machine =
      opts.machine != nullptr ? *opts.machine : machine::bgp_model();
  StageTimer timer(opts.sink, "ingest.ras_binary");
  CORAL_OBS_COUNT(obs::as_collector(opts.sink), "ingest.ras_binary.bytes", buffer.size());

  std::uint32_t version = kRasVersion;
  const bool header_ok = buffer.size() >= sizeof kRasMagic + sizeof version &&
                         std::memcmp(buffer.data(), kRasMagic, sizeof kRasMagic) == 0;
  if (header_ok) {
    std::memcpy(&version, buffer.data() + sizeof kRasMagic, sizeof version);
  }
  if (opts.mode == ParseMode::Strict) {
    if (!header_ok) throw ParseError("not a binary RAS log (bad magic)");
    if (version != kRasVersion && version != kRasVersion3) {
      throw ParseError("unsupported binary RAS log version " + std::to_string(version));
    }
  }
  // Lenient mode tolerates a damaged file header: the framed blocks are
  // self-locating, so recovery proceeds from whatever survives. Offsets in
  // reports and errors are relative to the end of the 8-byte header, as the
  // streaming reader always counted them.
  const std::string_view region =
      buffer.substr(std::min(buffer.size(), sizeof kRasMagic + sizeof version));

  // Bound for the corrupt-declared-total allocation guard: v2 records are
  // fixed 24 bytes; v3 columns bottom out at 8 bytes per record before
  // compression, and compression is bounded by the block floor anyway.
  const std::size_t reserve_div = version == kRasVersion3 ? 8 : sizeof(PackedRecord);

  std::optional<bin::ZoneFilter> filter_store;
  const bin::ZoneFilter* filter = nullptr;
  if (!opts.predicate.unconstrained()) {
    filter_store.emplace(opts.predicate, machine.codec(), machine.midplane_count());
    filter = &*filter_store;
  }

  bin::BlockCounters blocks;
  // The indexed in-place path wins even on a single-thread pool (no per-block
  // payload copies), so any pool at all selects it.
  RasLog log = opts.pool != nullptr
                   ? read_region_parallel(region, catalog, opts.mode, machine, rep,
                                          *opts.pool, filter, blocks, reserve_div)
                   : read_region_sequential(region, catalog, opts.mode, machine, rep,
                                            filter, blocks, reserve_div);

  obs::Collector* col = obs::as_collector(opts.sink);
  CORAL_OBS_COUNT(col, "ingest.ras_binary.blocks_total", blocks.total);
  CORAL_OBS_COUNT(col, "ingest.ras_binary.blocks_decoded", blocks.decoded);
  CORAL_OBS_COUNT(col, "ingest.ras_binary.blocks_skipped", blocks.skipped);

  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(opts.sink, "ingest.ras_binary");
  return log;
}

}  // namespace

void write_binary(std::ostream& out, const RasLog& log) {
  write_v2(out, log, nullptr);
}

void write_binary(std::ostream& out, const RasLog& log, const WriteOptions& opts) {
  if (opts.version == kRasVersion) {
    write_v2(out, log, opts.pool);
  } else if (opts.version == kRasVersion3) {
    write_v3(out, log, opts);
  } else {
    throw InvalidArgument("unsupported binary RAS log version " +
                          std::to_string(opts.version));
  }
}

RasLog read_binary(std::istream& in, const Catalog& catalog, const ReadOptions& opts) {
  // Buffer the whole input once; frames are then indexed and decoded in
  // place, with no per-block payload copies. A string-backed stream already
  // holds a contiguous buffer — decode straight from its view instead of
  // copying tens of MB. Otherwise a seekable stream reveals its size up
  // front, so the buffer can be read in one pass into default-initialized
  // memory (std::string would zero-fill it first); anything else goes
  // through the chunked slurp.
  if (auto* sb = dynamic_cast<std::stringbuf*>(in.rdbuf())) {
    const auto pos = in.tellg();
    if (pos != std::istream::pos_type(-1)) {
      const std::string_view view = sb->view();
      const auto off = static_cast<std::size_t>(pos);
      if (off <= view.size()) {
        in.seekg(0, std::ios::end);
        return read_view(view.substr(off), catalog, opts);
      }
    }
  }
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end > pos) {
      const auto size = static_cast<std::size_t>(end - pos);
      const std::unique_ptr<char[]> mem(new char[size]);
      in.read(mem.get(), static_cast<std::streamsize>(size));
      if (static_cast<std::size_t>(in.gcount()) == size) {
        return read_view(std::string_view(mem.get(), size), catalog, opts);
      }
    }
  }
  const std::string buffer = slurp(in);
  return read_view(buffer, catalog, opts);
}

RasLog read_binary(std::istream& in, const Catalog& catalog, ParseMode mode,
                   IngestReport* report, InstrumentationSink* sink, par::ThreadPool* pool,
                   const machine::MachineModel& machine) {
  ReadOptions opts;
  opts.mode = mode;
  opts.report = report;
  opts.sink = sink;
  opts.pool = pool;
  opts.machine = &machine;
  return read_binary(in, catalog, opts);
}

RasLog read_binary_file(const std::string& path, const Catalog& catalog,
                        const ReadOptions& opts) {
#ifdef CORAL_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw Error("cannot open binary RAS log: " + path);
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw Error("cannot stat binary RAS log: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return read_view(std::string_view{}, catalog, opts);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapped != MAP_FAILED) {
    struct Unmap {
      void* p;
      std::size_t n;
      ~Unmap() { ::munmap(p, n); }
    } guard{mapped, size};
    return read_view(std::string_view(static_cast<const char*>(mapped), size), catalog,
                     opts);
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open binary RAS log: " + path);
  return read_binary(in, catalog, opts);
}

}  // namespace coral::ras
