#include "coral/ras/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"

namespace coral::ras {

namespace {

constexpr char kMagic[4] = {'C', 'R', 'A', 'S'};
constexpr std::uint32_t kVersion = 2;
constexpr char kDictTag = 'D';
constexpr char kRecordTag = 'R';
// Small blocks bound what one damaged frame can take with it: 64 records is
// ~1.5 KB of payload, so the 12-byte frame header stays under 1% overhead
// while a single bit flip in a 100k-record log costs at most 0.064% of it.
constexpr std::size_t kRecordsPerBlock = 64;

struct PackedRecord {
  std::int64_t time_usec = 0;
  std::uint32_t packed_location = 0;
  std::uint32_t dict_index = 0;
  std::uint32_t serial = 0;
  std::uint8_t severity = 0;
  std::uint8_t pad[3] = {0, 0, 0};  ///< explicit zeros: serialization is memcpy'd,
                                    ///< so padding bytes must be deterministic
};
static_assert(sizeof(PackedRecord) == 24);

// Rebuild a Location from its packed form (inverse of Location::packed()).
bgp::Location unpack_location(std::uint32_t packed) {
  const auto kind = static_cast<bgp::LocationKind>((packed >> 24) & 0xFF);
  const int rack = static_cast<int>((packed >> 16) & 0xFF);
  const int mid_in_rack = static_cast<int>((packed >> 12) & 0xF) == 0xF
                              ? -1
                              : static_cast<int>((packed >> 12) & 0xF);
  const int card = static_cast<int>((packed >> 6) & 0x3F) == 0x3F
                       ? -1
                       : static_cast<int>((packed >> 6) & 0x3F);
  const int sub =
      static_cast<int>(packed & 0x3F) == 0x3F ? -1 : static_cast<int>(packed & 0x3F);
  using bgp::Location;
  using bgp::LocationKind;
  switch (kind) {
    case LocationKind::Rack:
      return Location::rack(rack);
    case LocationKind::Midplane:
      return Location::midplane(bgp::midplane_id(rack, mid_in_rack));
    case LocationKind::NodeCard:
      return Location::node_card(bgp::midplane_id(rack, mid_in_rack), card);
    case LocationKind::ComputeCard:
      return Location::compute_card(bgp::midplane_id(rack, mid_in_rack), card, sub);
    case LocationKind::ServiceCard:
      return Location::service_card(bgp::midplane_id(rack, mid_in_rack));
    case LocationKind::LinkCard:
      return Location::link_card(bgp::midplane_id(rack, mid_in_rack), card);
    case LocationKind::IoNode:
      return Location::io_node(bgp::midplane_id(rack, mid_in_rack), card, sub);
  }
  throw ParseError("bad location kind in binary RAS log");
}

// Decoded 'D' payload: dictionary remapped into the target catalog plus the
// file's total record count. A name missing from the catalog stays nullopt
// in strict-vs-lenient-neutral form; the caller decides whether to throw.
struct Dictionary {
  std::vector<std::optional<ErrcodeId>> remap;
  std::uint64_t total_records = 0;
};

Dictionary parse_dictionary(bin::PayloadCursor& cur, const Catalog& catalog,
                            ParseMode mode) {
  Dictionary dict;
  const auto size = cur.get<std::uint32_t>();
  if (size > 1'000'000) throw ParseError("implausible dictionary size");
  dict.remap.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto len = cur.get<std::uint16_t>();
    const std::string name = cur.get_string(len);
    const auto id = catalog.find(name);
    if (!id && mode == ParseMode::Strict) {
      throw ParseError("unknown errcode in binary RAS log: '" + name + "'");
    }
    dict.remap.push_back(id);
  }
  dict.total_records = cur.get<std::uint64_t>();
  return dict;
}

}  // namespace

void write_binary(std::ostream& out, const RasLog& log) {
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);

  bin::BlockWriter w(out);
  // Dictionary: every catalog errcode name, indexed by ErrcodeId. Written
  // twice so one damaged frame cannot make every record undecodable.
  const Catalog& catalog = log.catalog();
  for (int copy = 0; copy < 2; ++copy) {
    w.put(kDictTag);
    w.put(static_cast<std::uint32_t>(catalog.size()));
    for (const ErrcodeInfo& info : catalog.all()) w.put_string(info.name);
    w.put(static_cast<std::uint64_t>(log.size()));
    w.flush();
  }

  for (std::size_t base = 0; base < log.size(); base += kRecordsPerBlock) {
    const std::size_t n = std::min(kRecordsPerBlock, log.size() - base);
    w.put(kRecordTag);
    w.put(static_cast<std::uint32_t>(n));
    for (std::size_t i = base; i < base + n; ++i) {
      const RasEvent& ev = log[i];
      PackedRecord rec;
      rec.time_usec = ev.event_time.usec();
      rec.packed_location = ev.location.packed();
      rec.dict_index = static_cast<std::uint32_t>(ev.errcode);
      rec.serial = ev.serial;
      rec.severity = static_cast<std::uint8_t>(ev.severity);
      w.append(&rec, sizeof rec);
    }
    w.flush();
  }
}

RasLog read_binary(std::istream& in, const Catalog& catalog, ParseMode mode,
                   IngestReport* report, InstrumentationSink* sink) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.ras_binary");

  char header[8];
  in.read(header, sizeof header);
  if (mode == ParseMode::Strict) {
    if (!in || std::memcmp(header, kMagic, sizeof kMagic) != 0) {
      throw ParseError("not a binary RAS log (bad magic)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, header + sizeof kMagic, sizeof version);
    if (version != kVersion) {
      throw ParseError("unsupported binary RAS log version " + std::to_string(version));
    }
  }
  // Lenient mode tolerates a damaged file header: the framed blocks are
  // self-locating, so recovery proceeds from whatever survives.

  // Frame damage is tracked in a side report: one sample per damaged
  // stretch, while the caller-visible BinaryFrame *count* is computed below
  // as the exact number of records lost (the dictionary carries the total).
  IngestReport frames;
  bin::BlockReader blocks(in, mode, &frames, "binary RAS log");

  std::optional<Dictionary> dict;
  std::vector<RasEvent> events;
  std::uint64_t attempted = 0;  // records decoded or individually rejected
  std::string payload;
  while (blocks.next(payload)) {
    bin::PayloadCursor cur(payload, blocks.block_offset() + bin::kBlockHeaderBytes,
                           "binary RAS log");
    try {
      const char tag = cur.get<char>();
      if (tag == kDictTag) {
        Dictionary d = parse_dictionary(cur, catalog, mode);
        if (!dict) dict = std::move(d);  // later copies are redundancy
        continue;
      }
      if (tag != kRecordTag) {
        if (mode == ParseMode::Strict) {
          throw ParseError("unknown block tag in binary RAS log at byte offset " +
                           std::to_string(blocks.block_offset()));
        }
        continue;  // records inside are covered by the lost-record top-up
      }
      const auto n = cur.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t rec_offset = cur.offset();
        PackedRecord rec;
        cur.read(&rec, sizeof rec);
        ++attempted;
        if (!dict) {
          // Both dictionary copies were damaged; nothing to resolve against.
          if (mode == ParseMode::Strict) {
            throw ParseError("records before dictionary in binary RAS log");
          }
          rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                            "record with no surviving dictionary");
          continue;
        }
        if (rec.dict_index >= dict->remap.size()) {
          if (mode == ParseMode::Strict) throw ParseError("bad dictionary index");
          rep.add_malformed(IngestReason::BadRecord, rec_offset, "",
                            "dictionary index out of range");
          continue;
        }
        if (!dict->remap[rec.dict_index]) {
          rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                            "errcode name not in target catalog");
          continue;
        }
        if (rec.severity > static_cast<std::uint8_t>(Severity::Fatal)) {
          if (mode == ParseMode::Strict) {
            throw ParseError("bad severity in binary RAS log at byte offset " +
                             std::to_string(rec_offset));
          }
          rep.add_malformed(IngestReason::BadSeverity, rec_offset, "",
                            "severity byte out of range");
          continue;
        }
        RasEvent ev;
        ev.event_time = TimePoint(rec.time_usec);
        try {
          ev.location = unpack_location(rec.packed_location);
        } catch (const Error& e) {
          if (mode == ParseMode::Strict) throw;
          rep.add_malformed(IngestReason::BadLocation, rec_offset, "", e.what());
          continue;
        }
        ev.errcode = *dict->remap[rec.dict_index];
        ev.serial = rec.serial;
        ev.severity = static_cast<Severity>(rec.severity);
        events.push_back(ev);
        rep.add_ok();
      }
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      // A CRC-valid block whose payload still does not parse (writer bug or
      // an adversarial file): skip it; the lost-record top-up accounts for
      // its records.
    }
  }

  if (mode == ParseMode::Strict) {
    if (!dict) throw ParseError("missing dictionary in binary RAS log");
    if (attempted != dict->total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict->total_records) + ", got " +
                       std::to_string(attempted));
    }
  } else {
    // Exactly the records that vanished with dropped/undecodable frames.
    const std::uint64_t expected = dict ? dict->total_records : attempted;
    if (expected > attempted) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted);
    }
    rep.adopt_samples(frames);
  }

  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.ras_binary");
  return RasLog(std::move(events), catalog);
}

}  // namespace coral::ras
