#include "coral/ras/binary_io.hpp"

#include <cstring>
#include <istream>
#include <map>
#include <ostream>

#include "coral/common/error.hpp"

namespace coral::ras {

namespace {

constexpr char kMagic[4] = {'C', 'R', 'A', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw ParseError("truncated binary RAS log");
  return value;
}

struct PackedRecord {
  std::int64_t time_usec;
  std::uint32_t packed_location;
  std::uint32_t dict_index;
  std::uint32_t serial;
  std::uint8_t severity;
  std::uint8_t pad[3];
};
static_assert(sizeof(PackedRecord) == 24);

// Rebuild a Location from its packed form (inverse of Location::packed()).
bgp::Location unpack_location(std::uint32_t packed) {
  const auto kind = static_cast<bgp::LocationKind>((packed >> 24) & 0xFF);
  const int rack = static_cast<int>((packed >> 16) & 0xFF);
  const int mid_in_rack = static_cast<int>((packed >> 12) & 0xF) == 0xF
                              ? -1
                              : static_cast<int>((packed >> 12) & 0xF);
  const int card = static_cast<int>((packed >> 6) & 0x3F) == 0x3F
                       ? -1
                       : static_cast<int>((packed >> 6) & 0x3F);
  const int sub =
      static_cast<int>(packed & 0x3F) == 0x3F ? -1 : static_cast<int>(packed & 0x3F);
  using bgp::Location;
  using bgp::LocationKind;
  switch (kind) {
    case LocationKind::Rack:
      return Location::rack(rack);
    case LocationKind::Midplane:
      return Location::midplane(bgp::midplane_id(rack, mid_in_rack));
    case LocationKind::NodeCard:
      return Location::node_card(bgp::midplane_id(rack, mid_in_rack), card);
    case LocationKind::ComputeCard:
      return Location::compute_card(bgp::midplane_id(rack, mid_in_rack), card, sub);
    case LocationKind::ServiceCard:
      return Location::service_card(bgp::midplane_id(rack, mid_in_rack));
    case LocationKind::LinkCard:
      return Location::link_card(bgp::midplane_id(rack, mid_in_rack), card);
    case LocationKind::IoNode:
      return Location::io_node(bgp::midplane_id(rack, mid_in_rack), card, sub);
  }
  throw ParseError("bad location kind in binary RAS log");
}

}  // namespace

void write_binary(std::ostream& out, const RasLog& log) {
  out.write(kMagic, sizeof kMagic);
  put(out, kVersion);

  // Dictionary: every catalog errcode name, indexed by ErrcodeId.
  const Catalog& catalog = log.catalog();
  put(out, static_cast<std::uint32_t>(catalog.size()));
  for (const ErrcodeInfo& info : catalog.all()) {
    put(out, static_cast<std::uint16_t>(info.name.size()));
    out.write(info.name.data(), static_cast<std::streamsize>(info.name.size()));
  }

  put(out, static_cast<std::uint64_t>(log.size()));
  for (const RasEvent& ev : log) {
    PackedRecord rec{};
    rec.time_usec = ev.event_time.usec();
    rec.packed_location = ev.location.packed();
    rec.dict_index = static_cast<std::uint32_t>(ev.errcode);
    rec.serial = ev.serial;
    rec.severity = static_cast<std::uint8_t>(ev.severity);
    out.write(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
}

RasLog read_binary(std::istream& in, const Catalog& catalog) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("not a binary RAS log (bad magic)");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kVersion) {
    throw ParseError("unsupported binary RAS log version " + std::to_string(version));
  }

  // Dictionary -> target catalog id mapping.
  const auto dict_size = get<std::uint32_t>(in);
  if (dict_size > 1'000'000) throw ParseError("implausible dictionary size");
  std::vector<ErrcodeId> remap(dict_size);
  std::string name;
  for (std::uint32_t i = 0; i < dict_size; ++i) {
    const auto len = get<std::uint16_t>(in);
    name.resize(len);
    in.read(name.data(), len);
    if (!in) throw ParseError("truncated dictionary in binary RAS log");
    const auto id = catalog.find(name);
    if (!id) throw ParseError("unknown errcode in binary RAS log: '" + name + "'");
    remap[i] = *id;
  }

  const auto count = get<std::uint64_t>(in);
  std::vector<RasEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedRecord rec{};
    in.read(reinterpret_cast<char*>(&rec), sizeof rec);
    if (!in) throw ParseError("truncated records in binary RAS log");
    if (rec.dict_index >= dict_size) throw ParseError("bad dictionary index");
    RasEvent ev;
    ev.event_time = TimePoint(rec.time_usec);
    ev.location = unpack_location(rec.packed_location);
    ev.errcode = remap[rec.dict_index];
    ev.serial = rec.serial;
    ev.severity = static_cast<Severity>(rec.severity);
    events.push_back(ev);
  }
  return RasLog(std::move(events), catalog);
}

}  // namespace coral::ras
