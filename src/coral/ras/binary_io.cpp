#include "coral/ras/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <iterator>
#include <optional>
#include <ostream>
#include <streambuf>
#include <string_view>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/common/parallel.hpp"
#include "coral/obs/obs.hpp"

namespace coral::ras {

namespace {

constexpr char kMagic[4] = {'C', 'R', 'A', 'S'};
constexpr std::uint32_t kVersion = 2;
constexpr char kDictTag = 'D';
constexpr char kRecordTag = 'R';
// Small blocks bound what one damaged frame can take with it: 64 records is
// ~1.5 KB of payload, so the 12-byte frame header stays under 1% overhead
// while a single bit flip in a 100k-record log costs at most 0.064% of it.
constexpr std::size_t kRecordsPerBlock = 64;

struct PackedRecord {
  std::int64_t time_usec = 0;
  std::uint32_t packed_location = 0;
  std::uint32_t dict_index = 0;
  std::uint32_t serial = 0;
  std::uint8_t severity = 0;
  std::uint8_t pad[3] = {0, 0, 0};  ///< explicit zeros: serialization is memcpy'd,
                                    ///< so padding bytes must be deterministic
};
static_assert(sizeof(PackedRecord) == 24);

// Decoded 'D' payload: dictionary remapped into the target catalog plus the
// file's total record count. A name missing from the catalog stays nullopt
// in strict-vs-lenient-neutral form; the caller decides whether to throw.
struct Dictionary {
  std::vector<std::optional<ErrcodeId>> remap;
  std::uint64_t total_records = 0;
};

Dictionary parse_dictionary(bin::PayloadCursor& cur, const Catalog& catalog,
                            ParseMode mode) {
  Dictionary dict;
  const auto size = cur.get<std::uint32_t>();
  if (size > 1'000'000) throw ParseError("implausible dictionary size");
  dict.remap.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto len = cur.get<std::uint16_t>();
    const std::string name = cur.get_string(len);
    const auto id = catalog.find(name);
    if (!id && mode == ParseMode::Strict) {
      throw ParseError("unknown errcode in binary RAS log: '" + name + "'");
    }
    dict.remap.push_back(id);
  }
  dict.total_records = cur.get<std::uint64_t>();
  return dict;
}

// Validate and append one fixed-size record. Shared by the contiguous fast
// path and the bounds-checked slow path so their accounting cannot drift.
void decode_one(const PackedRecord& rec, std::uint64_t rec_offset, const Dictionary& dict,
                ParseMode mode, const machine::MachineModel& machine, IngestReport& rep,
                std::vector<RasEvent>& events) {
  if (rec.dict_index >= dict.remap.size()) {
    if (mode == ParseMode::Strict) throw ParseError("bad dictionary index");
    rep.add_malformed(IngestReason::BadRecord, rec_offset, "",
                      "dictionary index out of range");
    return;
  }
  if (!dict.remap[rec.dict_index]) {
    rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                      "errcode name not in target catalog");
    return;
  }
  if (rec.severity > static_cast<std::uint8_t>(Severity::Fatal)) {
    if (mode == ParseMode::Strict) {
      throw ParseError("bad severity in binary RAS log at byte offset " +
                       std::to_string(rec_offset));
    }
    rep.add_malformed(IngestReason::BadSeverity, rec_offset, "",
                      "severity byte out of range");
    return;
  }
  RasEvent ev;
  ev.event_time = TimePoint(rec.time_usec);
  try {
    ev.location = machine.location_from_packed(rec.packed_location);
  } catch (const Error& e) {
    if (mode == ParseMode::Strict) throw;
    rep.add_malformed(IngestReason::BadLocation, rec_offset, "", e.what());
    return;
  }
  ev.errcode = *dict.remap[rec.dict_index];
  ev.serial = rec.serial;
  ev.severity = static_cast<Severity>(rec.severity);
  events.push_back(ev);
  rep.add_ok();
}

// Decode one 'R' payload's records (cursor past the tag byte). `dict` may be
// null only when both dictionary copies were lost earlier in the input.
// Shared by the sequential and parallel readers so their per-record
// accounting cannot drift apart.
void decode_records(bin::PayloadCursor& cur, const Dictionary* dict, ParseMode mode,
                    const machine::MachineModel& machine, IngestReport& rep,
                    std::vector<RasEvent>& events, std::uint64_t& attempted) {
  const auto n = cur.get<std::uint32_t>();
  // Writer-canonical blocks hold exactly n contiguous records; decode them
  // straight from the payload view, skipping per-record cursor bookkeeping.
  // Any other shape (an adversarial CRC-valid payload) takes the
  // bounds-checked loop below with identical accounting.
  if (dict != nullptr &&
      cur.remaining() == std::size_t{n} * sizeof(PackedRecord)) {
    const std::uint64_t base = cur.offset();
    const std::string_view raw = cur.take(cur.remaining());
    for (std::uint32_t i = 0; i < n; ++i) {
      PackedRecord rec;
      std::memcpy(&rec, raw.data() + std::size_t{i} * sizeof rec, sizeof rec);
      ++attempted;
      decode_one(rec, base + std::uint64_t{i} * sizeof rec, *dict, mode, machine, rep, events);
    }
    return;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t rec_offset = cur.offset();
    PackedRecord rec;
    cur.read(&rec, sizeof rec);
    ++attempted;
    if (dict == nullptr) {
      // Both dictionary copies were damaged; nothing to resolve against.
      if (mode == ParseMode::Strict) {
        throw ParseError("records before dictionary in binary RAS log");
      }
      rep.add_malformed(IngestReason::UnknownErrcode, rec_offset, "",
                        "record with no surviving dictionary");
      continue;
    }
    decode_one(rec, rec_offset, *dict, mode, machine, rep, events);
  }
}

/// An istream over an in-memory region, so the recovering BlockReader can
/// run on the already-buffered file without copying it.
struct ViewBuf : std::streambuf {
  explicit ViewBuf(std::string_view v) {
    char* p = const_cast<char*>(v.data());
    setg(p, p, p + v.size());
  }
};

// The reference reader: the recovering BlockReader walked front to back.
// Handles every damage shape, and defines the exact error messages and
// lenient accounting the parallel fast path must reproduce.
RasLog read_region_sequential(std::string_view region, const Catalog& catalog,
                              ParseMode mode, const machine::MachineModel& machine,
                              IngestReport& rep) {
  ViewBuf viewbuf(region);
  std::istream in(&viewbuf);

  // Frame damage is tracked in a side report: one sample per damaged
  // stretch, while the caller-visible BinaryFrame *count* is computed below
  // as the exact number of records lost (the dictionary carries the total).
  IngestReport frames;
  bin::BlockReader blocks(in, mode, &frames, "binary RAS log");

  std::optional<Dictionary> dict;
  std::vector<RasEvent> events;
  std::uint64_t attempted = 0;  // records decoded or individually rejected
  std::string payload;
  while (blocks.next(payload)) {
    bin::PayloadCursor cur(payload, blocks.block_offset() + bin::kBlockHeaderBytes,
                           "binary RAS log");
    try {
      const char tag = cur.get<char>();
      if (tag == kDictTag) {
        Dictionary d = parse_dictionary(cur, catalog, mode);
        if (!dict) dict = std::move(d);  // later copies are redundancy
        // Pre-size from the declared total, capped by what the region could
        // physically hold so a corrupt count cannot force a huge allocation.
        events.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(dict->total_records,
                                    region.size() / sizeof(PackedRecord))));
        continue;
      }
      if (tag != kRecordTag) {
        if (mode == ParseMode::Strict) {
          throw ParseError("unknown block tag in binary RAS log at byte offset " +
                           std::to_string(blocks.block_offset()));
        }
        continue;  // records inside are covered by the lost-record top-up
      }
      decode_records(cur, dict ? &*dict : nullptr, mode, machine, rep, events, attempted);
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      // A CRC-valid block whose payload still does not parse (writer bug or
      // an adversarial file): skip it; the lost-record top-up accounts for
      // its records.
    }
  }

  if (mode == ParseMode::Strict) {
    if (!dict) throw ParseError("missing dictionary in binary RAS log");
    if (attempted != dict->total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict->total_records) + ", got " +
                       std::to_string(attempted));
    }
  } else {
    // Exactly the records that vanished with dropped/undecodable frames.
    const std::uint64_t expected = dict ? dict->total_records : attempted;
    if (expected > attempted) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted);
    }
    rep.adopt_samples(frames);
  }

  return RasLog(std::move(events), catalog, machine);
}

// The fast path: index frames in place, decode the dictionary (the writer
// always puts it in block 0), then fan CRC verification + record decode over
// contiguous block ranges. Any framing anomaly defers to the sequential
// reader, which is the authority on recovery; the caller's report is only
// touched on a committed parallel result, so the fallback starts clean.
RasLog read_region_parallel(std::string_view region, const Catalog& catalog,
                            ParseMode mode, const machine::MachineModel& machine,
                            IngestReport& rep, par::ThreadPool& pool) {
  const auto fall_back = [&] { return read_region_sequential(region, catalog, mode, machine, rep); };

  std::vector<bin::FrameRef> frames;
  if (!bin::index_frames(region, frames) || frames.empty()) return fall_back();
  const char* base = region.data();
  if (base[frames[0].offset + bin::kBlockHeaderBytes] != kDictTag) return fall_back();

  // Block 0 carries the dictionary, so any error in it — CRC or content — is
  // also the sequential reader's first error; order is preserved by handling
  // it before the fan-out.
  const bin::FrameRef& f0 = frames[0];
  const char* dict_payload = base + f0.offset + bin::kBlockHeaderBytes;
  if (bin::crc32(dict_payload, f0.size) != f0.crc) {
    if (mode == ParseMode::Strict) {
      throw ParseError("binary RAS log: block CRC mismatch at byte offset " +
                       std::to_string(f0.offset));
    }
    return fall_back();  // the redundant copy may still be intact
  }
  Dictionary dict;
  {
    bin::PayloadCursor cur(std::string_view(dict_payload, f0.size),
                           f0.offset + bin::kBlockHeaderBytes, "binary RAS log");
    try {
      cur.get<char>();  // tag, known to be 'D'
      dict = parse_dictionary(cur, catalog, mode);
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      return fall_back();  // sequential skips the block, second copy serves
    }
  }

  struct ChunkOut {
    std::vector<RasEvent> events;
    IngestReport rep;
    std::uint64_t attempted = 0;
    bool damaged = false;    ///< lenient CRC failure: whole read falls back
    std::string error;       ///< strict: first error in block order
    bool has_error = false;
  };

  const std::size_t nblocks = frames.size() - 1;
  // 4 chunks per thread for load balance; a single-thread pool gets one
  // chunk so the merge below is a plain move.
  const std::size_t chunks =
      pool.thread_count() <= 1
          ? 1
          : std::max<std::size_t>(1, std::min(nblocks, pool.thread_count() * 4));
  std::vector<ChunkOut> outs(chunks);

  par::parallel_for_chunks(
      chunks, 1,
      [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          ChunkOut& out = outs[c];
          const std::size_t fb = 1 + c * nblocks / chunks;
          const std::size_t fe = 1 + (c + 1) * nblocks / chunks;
          out.events.reserve((fe - fb) * kRecordsPerBlock);
          for (std::size_t f = fb; f < fe; ++f) {
            const bin::FrameRef& fr = frames[f];
            const char* payload = base + fr.offset + bin::kBlockHeaderBytes;
            if (bin::crc32(payload, fr.size) != fr.crc) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = "binary RAS log: block CRC mismatch at byte offset " +
                            std::to_string(fr.offset);
              } else {
                out.damaged = true;
              }
              break;
            }
            bin::PayloadCursor cur(std::string_view(payload, fr.size),
                                   fr.offset + bin::kBlockHeaderBytes, "binary RAS log");
            try {
              const char tag = cur.get<char>();
              if (tag == kDictTag) {
                parse_dictionary(cur, catalog, mode);  // redundant copy
                continue;
              }
              if (tag != kRecordTag) {
                if (mode == ParseMode::Strict) {
                  throw ParseError("unknown block tag in binary RAS log at byte offset " +
                                   std::to_string(fr.offset));
                }
                continue;
              }
              decode_records(cur, &dict, mode, machine, out.rep, out.events, out.attempted);
            } catch (const Error& e) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = e.what();
                break;
              }
              // Lenient: CRC-valid block that still fails to parse — skip
              // it, the lost-record top-up accounts for its records.
            }
          }
        }
      },
      &pool);

  if (mode == ParseMode::Strict) {
    // Chunks cover contiguous, ascending block ranges and each stopped at
    // its first error, so the earliest chunk's capture is the input-order
    // first error — exactly what the sequential reader would have thrown.
    for (const ChunkOut& out : outs) {
      if (out.has_error) throw ParseError(out.error);
    }
  } else {
    for (const ChunkOut& out : outs) {
      if (out.damaged) return fall_back();
    }
  }

  std::size_t total = 0;
  for (const ChunkOut& out : outs) total += out.events.size();
  std::vector<RasEvent> events;
  std::uint64_t attempted = 0;
  if (outs.size() == 1) {
    events = std::move(outs[0].events);
    rep.merge(outs[0].rep);
    attempted = outs[0].attempted;
  } else {
    events.reserve(total);
    for (ChunkOut& out : outs) {
      events.insert(events.end(), std::make_move_iterator(out.events.begin()),
                    std::make_move_iterator(out.events.end()));
      rep.merge(out.rep);  // chunk order == offset order: samples stay sorted
      attempted += out.attempted;
    }
  }

  if (mode == ParseMode::Strict) {
    if (attempted != dict.total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict.total_records) + ", got " +
                       std::to_string(attempted));
    }
  } else if (dict.total_records > attempted) {
    rep.add_malformed_bulk(IngestReason::BinaryFrame, dict.total_records - attempted);
  }

  return RasLog(std::move(events), catalog, machine);
}

std::string slurp(std::istream& in) {
  std::string buf;
  // Pre-size from the stream length when it is seekable (files, stringstreams).
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end > pos) {
      buf.reserve(static_cast<std::size_t>(end - pos));
    }
  }
  constexpr std::size_t kChunk = 1 << 20;
  for (;;) {
    const std::size_t old = buf.size();
    buf.resize(old + kChunk);
    in.read(buf.data() + old, static_cast<std::streamsize>(kChunk));
    const auto got = static_cast<std::size_t>(in.gcount());
    buf.resize(old + got);
    if (got < kChunk) break;
  }
  return buf;
}

}  // namespace

void write_binary(std::ostream& out, const RasLog& log) {
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);

  bin::BlockWriter w(out);
  // Dictionary: every catalog errcode name, indexed by ErrcodeId. Written
  // twice so one damaged frame cannot make every record undecodable.
  const Catalog& catalog = log.catalog();
  for (int copy = 0; copy < 2; ++copy) {
    w.put(kDictTag);
    w.put(static_cast<std::uint32_t>(catalog.size()));
    for (const ErrcodeInfo& info : catalog.all()) w.put_string(info.name);
    w.put(static_cast<std::uint64_t>(log.size()));
    w.flush();
  }

  for (std::size_t base = 0; base < log.size(); base += kRecordsPerBlock) {
    const std::size_t n = std::min(kRecordsPerBlock, log.size() - base);
    w.put(kRecordTag);
    w.put(static_cast<std::uint32_t>(n));
    for (std::size_t i = base; i < base + n; ++i) {
      const RasEvent& ev = log[i];
      PackedRecord rec;
      rec.time_usec = ev.event_time.usec();
      rec.packed_location = ev.location.packed();
      rec.dict_index = static_cast<std::uint32_t>(ev.errcode);
      rec.serial = ev.serial;
      rec.severity = static_cast<std::uint8_t>(ev.severity);
      w.append(&rec, sizeof rec);
    }
    w.flush();
  }
}

RasLog read_binary(std::istream& in, const Catalog& catalog, ParseMode mode,
                   IngestReport* report, InstrumentationSink* sink, par::ThreadPool* pool,
                   const machine::MachineModel& machine) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.ras_binary");

  // Buffer the whole input once; frames are then indexed and decoded in
  // place, with no per-block payload copies.
  const std::string buffer = slurp(in);
  CORAL_OBS_COUNT(obs::as_collector(sink), "ingest.ras_binary.bytes", buffer.size());

  if (mode == ParseMode::Strict) {
    if (buffer.size() < sizeof kMagic + sizeof kVersion ||
        std::memcmp(buffer.data(), kMagic, sizeof kMagic) != 0) {
      throw ParseError("not a binary RAS log (bad magic)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, buffer.data() + sizeof kMagic, sizeof version);
    if (version != kVersion) {
      throw ParseError("unsupported binary RAS log version " + std::to_string(version));
    }
  }
  // Lenient mode tolerates a damaged file header: the framed blocks are
  // self-locating, so recovery proceeds from whatever survives. Offsets in
  // reports and errors are relative to the end of the 8-byte header, as the
  // streaming reader always counted them.
  const std::string_view region = std::string_view(buffer).substr(
      std::min(buffer.size(), sizeof kMagic + sizeof kVersion));

  // The indexed in-place path wins even on a single-thread pool (no per-block
  // payload copies), so any pool at all selects it.
  RasLog log = pool != nullptr
                   ? read_region_parallel(region, catalog, mode, machine, rep, *pool)
                   : read_region_sequential(region, catalog, mode, machine, rep);

  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.ras_binary");
  return log;
}

}  // namespace coral::ras
