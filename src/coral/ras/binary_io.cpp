#include "coral/ras/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <iterator>
#include <optional>
#include <ostream>
#include <streambuf>
#include <string_view>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/common/parallel.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/binary_stream.hpp"

namespace coral::ras {

namespace {

/// An istream over an in-memory region, so the recovering BlockReader can
/// run on the already-buffered file without copying it.
struct ViewBuf : std::streambuf {
  explicit ViewBuf(std::string_view v) {
    char* p = const_cast<char*>(v.data());
    setg(p, p, p + v.size());
  }
};

// The reference reader: the recovering BlockReader walked front to back,
// feeding the shared incremental decoder — the same class the fleet
// session/wire path runs, which is what makes network ingest byte-identical
// to offline reads. Handles every damage shape, and defines the exact error
// messages and lenient accounting the parallel fast path must reproduce.
RasLog read_region_sequential(std::string_view region, const Catalog& catalog,
                              ParseMode mode, const machine::MachineModel& machine,
                              IngestReport& rep) {
  ViewBuf viewbuf(region);
  std::istream in(&viewbuf);

  // Frame damage is tracked in a side report: one sample per damaged
  // stretch, while the caller-visible BinaryFrame *count* is computed in
  // finish() as the exact number of records lost (the dictionary carries
  // the total).
  IngestReport frames;
  bin::BlockReader blocks(in, mode, &frames, "binary RAS log");

  RasStreamDecoder decoder(catalog, mode, machine);
  // Pre-size from the declared total, capped by what the region could
  // physically hold so a corrupt count cannot force a huge allocation.
  decoder.set_reserve_cap(region.size() / sizeof(PackedRecord));
  std::string payload;
  while (blocks.next(payload)) {
    decoder.on_payload(payload, blocks.block_offset() + bin::kBlockHeaderBytes);
  }
  return decoder.finish(rep, frames);
}

// The fast path: index frames in place, decode the dictionary (the writer
// always puts it in block 0), then fan CRC verification + record decode over
// contiguous block ranges. Any framing anomaly defers to the sequential
// reader, which is the authority on recovery; the caller's report is only
// touched on a committed parallel result, so the fallback starts clean.
RasLog read_region_parallel(std::string_view region, const Catalog& catalog,
                            ParseMode mode, const machine::MachineModel& machine,
                            IngestReport& rep, par::ThreadPool& pool) {
  const auto fall_back = [&] { return read_region_sequential(region, catalog, mode, machine, rep); };

  std::vector<bin::FrameRef> frames;
  if (!bin::index_frames(region, frames) || frames.empty()) return fall_back();
  const char* base = region.data();
  if (base[frames[0].offset + bin::kBlockHeaderBytes] != kRasDictTag) return fall_back();

  // Block 0 carries the dictionary, so any error in it — CRC or content — is
  // also the sequential reader's first error; order is preserved by handling
  // it before the fan-out.
  const bin::FrameRef& f0 = frames[0];
  const char* dict_payload = base + f0.offset + bin::kBlockHeaderBytes;
  if (bin::crc32(dict_payload, f0.size) != f0.crc) {
    if (mode == ParseMode::Strict) {
      throw ParseError("binary RAS log: block CRC mismatch at byte offset " +
                       std::to_string(f0.offset));
    }
    return fall_back();  // the redundant copy may still be intact
  }
  RasDictionary dict;
  {
    bin::PayloadCursor cur(std::string_view(dict_payload, f0.size),
                           f0.offset + bin::kBlockHeaderBytes, "binary RAS log");
    try {
      cur.get<char>();  // tag, known to be 'D'
      dict = parse_ras_dictionary(cur, catalog, mode);
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      return fall_back();  // sequential skips the block, second copy serves
    }
  }

  struct ChunkOut {
    std::vector<RasEvent> events;
    IngestReport rep;
    std::uint64_t attempted = 0;
    bool damaged = false;    ///< lenient CRC failure: whole read falls back
    std::string error;       ///< strict: first error in block order
    bool has_error = false;
  };

  const std::size_t nblocks = frames.size() - 1;
  // 4 chunks per thread for load balance; a single-thread pool gets one
  // chunk so the merge below is a plain move.
  const std::size_t chunks =
      pool.thread_count() <= 1
          ? 1
          : std::max<std::size_t>(1, std::min(nblocks, pool.thread_count() * 4));
  std::vector<ChunkOut> outs(chunks);

  par::parallel_for_chunks(
      chunks, 1,
      [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          ChunkOut& out = outs[c];
          const std::size_t fb = 1 + c * nblocks / chunks;
          const std::size_t fe = 1 + (c + 1) * nblocks / chunks;
          out.events.reserve((fe - fb) * kRasRecordsPerBlock);
          for (std::size_t f = fb; f < fe; ++f) {
            const bin::FrameRef& fr = frames[f];
            const char* payload = base + fr.offset + bin::kBlockHeaderBytes;
            if (bin::crc32(payload, fr.size) != fr.crc) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = "binary RAS log: block CRC mismatch at byte offset " +
                            std::to_string(fr.offset);
              } else {
                out.damaged = true;
              }
              break;
            }
            bin::PayloadCursor cur(std::string_view(payload, fr.size),
                                   fr.offset + bin::kBlockHeaderBytes, "binary RAS log");
            try {
              const char tag = cur.get<char>();
              if (tag == kRasDictTag) {
                parse_ras_dictionary(cur, catalog, mode);  // redundant copy
                continue;
              }
              if (tag != kRasRecordTag) {
                if (mode == ParseMode::Strict) {
                  throw ParseError("unknown block tag in binary RAS log at byte offset " +
                                   std::to_string(fr.offset));
                }
                continue;
              }
              decode_ras_records(cur, &dict, mode, machine, out.rep, out.events,
                                 out.attempted);
            } catch (const Error& e) {
              if (mode == ParseMode::Strict) {
                out.has_error = true;
                out.error = e.what();
                break;
              }
              // Lenient: CRC-valid block that still fails to parse — skip
              // it, the lost-record top-up accounts for its records.
            }
          }
        }
      },
      &pool);

  if (mode == ParseMode::Strict) {
    // Chunks cover contiguous, ascending block ranges and each stopped at
    // its first error, so the earliest chunk's capture is the input-order
    // first error — exactly what the sequential reader would have thrown.
    for (const ChunkOut& out : outs) {
      if (out.has_error) throw ParseError(out.error);
    }
  } else {
    for (const ChunkOut& out : outs) {
      if (out.damaged) return fall_back();
    }
  }

  std::size_t total = 0;
  for (const ChunkOut& out : outs) total += out.events.size();
  std::vector<RasEvent> events;
  std::uint64_t attempted = 0;
  if (outs.size() == 1) {
    events = std::move(outs[0].events);
    rep.merge(outs[0].rep);
    attempted = outs[0].attempted;
  } else {
    events.reserve(total);
    for (ChunkOut& out : outs) {
      events.insert(events.end(), std::make_move_iterator(out.events.begin()),
                    std::make_move_iterator(out.events.end()));
      rep.merge(out.rep);  // chunk order == offset order: samples stay sorted
      attempted += out.attempted;
    }
  }

  if (mode == ParseMode::Strict) {
    if (attempted != dict.total_records) {
      throw ParseError("binary RAS log record count mismatch: expected " +
                       std::to_string(dict.total_records) + ", got " +
                       std::to_string(attempted));
    }
  } else if (dict.total_records > attempted) {
    rep.add_malformed_bulk(IngestReason::BinaryFrame, dict.total_records - attempted);
  }

  return RasLog(std::move(events), catalog, machine);
}

std::string slurp(std::istream& in) {
  std::string buf;
  // Pre-size from the stream length when it is seekable (files, stringstreams).
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end > pos) {
      buf.reserve(static_cast<std::size_t>(end - pos));
    }
  }
  constexpr std::size_t kChunk = 1 << 20;
  for (;;) {
    const std::size_t old = buf.size();
    buf.resize(old + kChunk);
    in.read(buf.data() + old, static_cast<std::streamsize>(kChunk));
    const auto got = static_cast<std::size_t>(in.gcount());
    buf.resize(old + got);
    if (got < kChunk) break;
  }
  return buf;
}

}  // namespace

void write_binary(std::ostream& out, const RasLog& log) {
  out.write(kRasMagic, sizeof kRasMagic);
  out.write(reinterpret_cast<const char*>(&kRasVersion), sizeof kRasVersion);

  bin::BlockWriter w(out);
  // Dictionary: every catalog errcode name, indexed by ErrcodeId. Written
  // twice so one damaged frame cannot make every record undecodable.
  const Catalog& catalog = log.catalog();
  for (int copy = 0; copy < 2; ++copy) {
    w.put(kRasDictTag);
    w.put(static_cast<std::uint32_t>(catalog.size()));
    for (const ErrcodeInfo& info : catalog.all()) w.put_string(info.name);
    w.put(static_cast<std::uint64_t>(log.size()));
    w.flush();
  }

  for (std::size_t base = 0; base < log.size(); base += kRasRecordsPerBlock) {
    const std::size_t n = std::min(kRasRecordsPerBlock, log.size() - base);
    w.put(kRasRecordTag);
    w.put(static_cast<std::uint32_t>(n));
    for (std::size_t i = base; i < base + n; ++i) {
      const RasEvent& ev = log[i];
      PackedRecord rec;
      rec.time_usec = ev.event_time.usec();
      rec.packed_location = ev.location.packed();
      rec.dict_index = static_cast<std::uint32_t>(ev.errcode);
      rec.serial = ev.serial;
      rec.severity = static_cast<std::uint8_t>(ev.severity);
      w.append(&rec, sizeof rec);
    }
    w.flush();
  }
}

RasLog read_binary(std::istream& in, const Catalog& catalog, ParseMode mode,
                   IngestReport* report, InstrumentationSink* sink, par::ThreadPool* pool,
                   const machine::MachineModel& machine) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.ras_binary");

  // Buffer the whole input once; frames are then indexed and decoded in
  // place, with no per-block payload copies.
  const std::string buffer = slurp(in);
  CORAL_OBS_COUNT(obs::as_collector(sink), "ingest.ras_binary.bytes", buffer.size());

  if (mode == ParseMode::Strict) {
    if (buffer.size() < sizeof kRasMagic + sizeof kRasVersion ||
        std::memcmp(buffer.data(), kRasMagic, sizeof kRasMagic) != 0) {
      throw ParseError("not a binary RAS log (bad magic)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, buffer.data() + sizeof kRasMagic, sizeof version);
    if (version != kRasVersion) {
      throw ParseError("unsupported binary RAS log version " + std::to_string(version));
    }
  }
  // Lenient mode tolerates a damaged file header: the framed blocks are
  // self-locating, so recovery proceeds from whatever survives. Offsets in
  // reports and errors are relative to the end of the 8-byte header, as the
  // streaming reader always counted them.
  const std::string_view region = std::string_view(buffer).substr(
      std::min(buffer.size(), sizeof kRasMagic + sizeof kRasVersion));

  // The indexed in-place path wins even on a single-thread pool (no per-block
  // payload copies), so any pool at all selects it.
  RasLog log = pool != nullptr
                   ? read_region_parallel(region, catalog, mode, machine, rep, *pool)
                   : read_region_sequential(region, catalog, mode, machine, rep);

  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.ras_binary");
  return log;
}

}  // namespace coral::ras
