#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "coral/common/ingest.hpp"
#include "coral/machine/model.hpp"
#include "coral/ras/event.hpp"

namespace coral::ras {

/// Summary counts for a RAS log (Table I material).
struct RasLogSummary {
  std::size_t total_records = 0;
  std::size_t fatal_records = 0;
  std::size_t fatal_errcode_types = 0;     ///< distinct ERRCODEs seen at FATAL
  std::size_t fatal_component_types = 0;   ///< distinct COMPONENTs seen at FATAL
  TimePoint first_time;
  TimePoint last_time;
  std::map<Severity, std::size_t> by_severity;
  std::map<Component, std::size_t> fatal_by_component;
};

/// Structure-of-arrays view of the FATAL-severity records, materialized once
/// by RasLog::finalize(). The filter/match hot loops touch exactly three
/// fields per record — time, errcode and location — so scanning three
/// contiguous columns (8+4+4 bytes) instead of chasing whole RasEvents keeps
/// the working set a fraction of the AoS walk and lets the filters carry
/// plain index spans instead of copied event groups. `log_index[i]` maps
/// column row i back to the owning RasLog's events() (and doubles as
/// fatal_indices()); locations are stored as Location::packed() keys
/// (recover with bgp::Location::from_packed).
struct FatalColumns {
  std::vector<TimePoint> event_time;
  std::vector<ErrcodeId> errcode;
  std::vector<std::uint32_t> loc_key;
  std::vector<std::size_t> log_index;

  std::size_t size() const { return event_time.size(); }
  bool empty() const { return event_time.empty(); }
};

/// An in-memory RAS log: records sorted by EVENT_TIME, RECIDs assigned in
/// time order (as the CMCS backend does). A log remembers which catalog its
/// ErrcodeIds index into — and which machine its locations were parsed
/// against — so downstream consumers never have to guess.
class RasLog {
 public:
  RasLog() : catalog_(&default_catalog()) {}
  explicit RasLog(std::vector<RasEvent> events,
                  const Catalog& catalog = default_catalog(),
                  const machine::MachineModel& machine = machine::bgp_model());

  /// Tag for the reader fast path: the caller guarantees events arrive
  /// time-ordered with RECIDs already assigned 1..N (the binary readers
  /// emit exactly that), so finalization is a read-only verification walk
  /// instead of a rewrite that dirties every cache line of a
  /// multi-million-record array. If the order check fails the constructor
  /// falls back to the full finalize, so a caller lying about order still
  /// gets a correct log.
  struct TrustedRecids {};
  RasLog(std::vector<RasEvent> events, const Catalog& catalog,
         const machine::MachineModel& machine, TrustedRecids);

  /// Everything finalize() would compute, produced by a caller whose emit
  /// loop already had each record in registers: the fatal-column gather and
  /// the verdict of a running time-order check. When `sorted` holds, the
  /// constructor adopts the columns and skips the finalize walk entirely —
  /// the one remaining full pass over a multi-million-record reload. A
  /// caller whose order check failed sets `sorted = false` and gets the
  /// full sort-and-rebuild finalize (the columns are discarded).
  struct TrustedParts {
    FatalColumns fatal;
    bool sorted = true;
  };
  RasLog(std::vector<RasEvent> events, const Catalog& catalog,
         const machine::MachineModel& machine, TrustedParts parts);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const RasEvent& operator[](std::size_t i) const { return events_[i]; }
  const std::vector<RasEvent>& events() const { return events_; }

  /// The catalog this log's ErrcodeIds index into.
  const Catalog& catalog() const { return *catalog_; }

  /// The machine this log's locations belong to (default: reference BG/P).
  const machine::MachineModel& machine() const { return *machine_; }

  auto begin() const { return events_.begin(); }
  auto end() const { return events_.end(); }

  /// Append a record (time-ordered append is cheap; out-of-order appends are
  /// fixed up by finalize()).
  void append(RasEvent ev);

  /// Sort by time and assign RECIDs 1..N. Must be called after out-of-order
  /// appends and before analysis.
  void finalize();

  /// Copy of all FATAL-severity records, time-ordered. Deprecated
  /// compatibility shim: prefer fatal_columns() (no copy) or gather through
  /// fatal_indices(); this materializes a full AoS copy per call.
  std::vector<RasEvent> fatal_events() const;

  /// Indices of all FATAL-severity records, time-ordered. Maintained by
  /// finalize() so streaming consumers can gather fatal records without
  /// re-scanning the full log per run.
  const std::vector<std::size_t>& fatal_indices() const;

  /// Columnar (SoA) view of the FATAL records, maintained by finalize().
  /// Row i describes events()[fatal_columns().log_index[i]].
  const FatalColumns& fatal_columns() const;

  /// Index of the first event with time >= t (log must be finalized).
  std::size_t lower_bound(TimePoint t) const;

  /// Events within [begin, end), time-ordered (log must be finalized).
  std::vector<RasEvent> in_range(TimePoint begin, TimePoint end) const;

  RasLogSummary summary() const;

  /// CSV serialization with the Table II column set:
  /// RECID,MSG_ID,COMPONENT,SUBCOMPONENT,ERRCODE,SEVERITY,EVENT_TIME,LOCATION,SERIAL,MESSAGE
  void write_csv(std::ostream& out) const;

  /// Load a RAS CSV. Strict mode (the default) throws ParseError on the
  /// first malformed byte. Lenient mode skips-and-counts malformed rows
  /// (per-reason tallies, byte offsets and samples in `report` if given)
  /// and resynchronizes at the next row boundary, so a truncated or
  /// bit-flipped log still yields every intact record. When `sink` is given
  /// an "ingest.ras_csv" stage sample (wall time, rows seen -> rows kept)
  /// plus per-reason malformed counters are recorded, alongside whatever
  /// stage timings the analysis engines emit into the same sink.
  /// Location strings are validated against `machine`'s grammar; the
  /// returned log is stamped with that model.
  static RasLog read_csv(std::istream& in, const Catalog& catalog = default_catalog(),
                         ParseMode mode = ParseMode::Strict,
                         IngestReport* report = nullptr,
                         InstrumentationSink* sink = nullptr,
                         const machine::MachineModel& machine = machine::bgp_model());

 private:
  /// Shared finalize walk; `trust_recids` makes the pass read-only (RECIDs
  /// are the caller's, verified time order is still required).
  void finalize_impl(bool trust_recids);

  const Catalog* catalog_;
  const machine::MachineModel* machine_ = &machine::bgp_model();
  std::vector<RasEvent> events_;
  FatalColumns fatal_;
  bool finalized_ = false;
};

}  // namespace coral::ras
