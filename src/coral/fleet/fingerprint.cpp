#include "coral/fleet/fingerprint.hpp"

#include <cstring>

namespace coral::fleet {

namespace {

/// FNV-1a 64, folded field-by-field so struct padding never leaks in.
class Fnv {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ull;
    }
  }
  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof v);
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    pod(bits);
  }
  void str(std::string_view s) {
    pod(static_cast<std::uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

void fold_event(Fnv& h, const ras::RasEvent& ev) {
  h.pod(ev.event_time.usec());
  h.pod(ev.location.packed());
  h.pod(static_cast<std::uint32_t>(ev.errcode));
  h.pod(ev.serial);
  h.pod(static_cast<std::uint8_t>(ev.severity));
}

void fold_job(Fnv& h, const joblog::JobRecord& j) {
  h.pod(j.job_id);
  h.pod(j.exec_id);
  h.pod(j.user_id);
  h.pod(j.project_id);
  h.pod(j.queue_time.usec());
  h.pod(j.start_time.usec());
  h.pod(j.end_time.usec());
  h.pod(j.partition.first_midplane());
  h.pod(j.partition.midplane_count());
  h.pod(j.exit_code);
}

void fold_fit(Fnv& h, const core::InterarrivalFit& fit) {
  h.pod(static_cast<std::uint64_t>(fit.samples_sec.size()));
  for (const double s : fit.samples_sec) h.f64(s);
  h.f64(fit.weibull.shape());
  h.f64(fit.weibull.scale());
  h.f64(fit.exponential.mean());
  h.f64(fit.lrt.statistic);
  h.f64(fit.lrt.p_value);
  h.pod(static_cast<std::uint8_t>(fit.lrt.weibull_preferred));
  h.f64(fit.ks_weibull);
  h.f64(fit.ks_exponential);
}

}  // namespace

std::uint64_t result_fingerprint(const core::CoAnalysisResult& r) {
  Fnv h;
  // Front end: filtered events + groups + mined pairs + stage census.
  h.pod(static_cast<std::uint64_t>(r.filtered.fatal_events.size()));
  for (const ras::RasEvent& ev : r.filtered.fatal_events) fold_event(h, ev);
  h.pod(static_cast<std::uint64_t>(r.filtered.groups.size()));
  for (const auto& g : r.filtered.groups) {
    h.pod(static_cast<std::uint64_t>(g.rep));
    h.pod(static_cast<std::uint64_t>(g.members.size()));
    for (const std::size_t m : g.members) h.pod(static_cast<std::uint64_t>(m));
  }
  for (const auto& [a, b] : r.filtered.causal_pairs) {
    h.pod(static_cast<std::uint32_t>(a));
    h.pod(static_cast<std::uint32_t>(b));
  }
  for (const auto& st : r.filtered.stages) {
    h.str(st.name);
    h.pod(static_cast<std::uint64_t>(st.input));
    h.pod(static_cast<std::uint64_t>(st.output));
  }
  // Matching.
  h.pod(static_cast<std::uint64_t>(r.matches.interruptions.size()));
  for (const auto& i : r.matches.interruptions) {
    h.pod(static_cast<std::uint64_t>(i.group));
    h.pod(static_cast<std::uint64_t>(i.job));
    h.pod(i.time.usec());
  }
  // Identification / classification / job filter.
  for (const auto& [code, verdict] : r.identification.verdicts) {
    h.pod(static_cast<std::uint32_t>(code));
    h.pod(static_cast<std::uint8_t>(verdict));
  }
  h.f64(r.identification.nonfatal_event_fraction);
  h.f64(r.identification.idle_event_fraction);
  for (const auto& [code, cc] : r.classification.by_code) {
    h.pod(static_cast<std::uint32_t>(code));
    h.pod(static_cast<std::uint8_t>(cc.cause));
    h.pod(static_cast<std::uint8_t>(cc.rule));
    h.f64(cc.correlation);
  }
  h.f64(r.classification.application_event_fraction);
  h.pod(static_cast<std::uint64_t>(r.job_filter.kept.size()));
  for (const std::size_t k : r.job_filter.kept) h.pod(static_cast<std::uint64_t>(k));
  for (const auto& [from, to] : r.job_filter.redundant_to) {
    h.pod(static_cast<std::uint64_t>(from));
    h.pod(static_cast<std::uint64_t>(to));
  }
  // Propagation + vulnerability scalars.
  for (const std::size_t g : r.propagation.propagating_groups) {
    h.pod(static_cast<std::uint64_t>(g));
  }
  for (const auto code : r.propagation.propagating_codes) {
    h.pod(static_cast<std::uint32_t>(code));
  }
  h.f64(r.propagation.propagating_event_fraction);
  h.pod(static_cast<std::uint64_t>(r.propagation.resubmissions_after_interruption));
  h.pod(static_cast<std::uint64_t>(r.propagation.resubmissions_same_partition));
  h.f64(r.vulnerability.app_interruptions_within_hour);
  h.pod(static_cast<std::uint64_t>(r.vulnerability.app_interruptions_wide_long));
  // Fits and the census vectors.
  fold_fit(h, r.fatal_before_jobfilter);
  fold_fit(h, r.fatal_after_jobfilter);
  fold_fit(h, r.interruptions_system);
  fold_fit(h, r.interruptions_application);
  h.pod(static_cast<std::uint64_t>(r.interruptions_per_day.size()));
  for (const int d : r.interruptions_per_day) h.pod(d);
  for (const double v : r.fatal_events_per_midplane) h.f64(v);
  for (const double v : r.workload_per_midplane) h.f64(v);
  for (const double v : r.wide_workload_per_midplane) h.f64(v);
  h.pod(static_cast<std::uint64_t>(r.system_interruptions));
  h.pod(static_cast<std::uint64_t>(r.application_interruptions));
  h.pod(static_cast<std::uint64_t>(r.distinct_interrupted_jobs));
  return h.value();
}

std::uint64_t log_fingerprint(const ras::RasLog& ras, const joblog::JobLog& jobs) {
  Fnv h;
  h.pod(static_cast<std::uint64_t>(ras.size()));
  for (const ras::RasEvent& ev : ras) fold_event(h, ev);
  h.pod(static_cast<std::uint64_t>(jobs.size()));
  for (const joblog::JobRecord& j : jobs) fold_job(h, j);
  h.pod(static_cast<std::uint64_t>(jobs.exec_files().size()));
  for (const std::string& s : jobs.exec_files()) h.str(s);
  for (const std::string& s : jobs.users()) h.str(s);
  for (const std::string& s : jobs.projects()) h.str(s);
  return h.value();
}

}  // namespace coral::fleet
