#include "coral/fleet/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "coral/common/error.hpp"

namespace coral::fleet {

ReplyFields parse_fields(std::string_view body) {
  ReplyFields out;
  while (!body.empty()) {
    const std::size_t nl = body.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? body : body.substr(0, nl);
    body.remove_prefix(nl == std::string_view::npos ? body.size() : nl + 1);
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    out.emplace(std::string(line.substr(0, eq)), std::string(line.substr(eq + 1)));
  }
  return out;
}

WireClient::WireClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw Error("bad daemon address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to " + host + ":" + std::to_string(port) + ": " + why);
  }
}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WireClient::send_raw(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) throw Error("daemon connection lost while sending");
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string WireClient::read_message() {
  std::string msg;
  char buf[64 << 10];
  while (!reader_.next(msg)) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) throw Error("daemon closed the connection");
    reader_.push(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  return msg;
}

std::string WireClient::request(char type, std::string_view body, char expect) {
  send_raw(encode_message(type, body));
  const std::string reply = read_message();
  if (reply.empty()) throw Error("empty reply from daemon");
  const std::string_view reply_body(reply.data() + 1, reply.size() - 1);
  if (reply[0] == kMsgError) {
    throw Error("daemon error: " + std::string(reply_body));
  }
  if (reply[0] != expect) {
    throw Error(std::string("unexpected reply type '") + reply[0] + "'");
  }
  return std::string(reply_body);
}

void WireClient::handshake(const Handshake& hs) {
  send_raw(encode_handshake(hs));
  const std::string reply = read_message();
  if (reply.empty() || reply[0] != kMsgOk) {
    const std::string_view why =
        reply.size() > 1 ? std::string_view(reply).substr(1) : "no reason given";
    throw Error("handshake rejected: " + std::string(why));
  }
}

void WireClient::send_data(stream::Source src, std::string_view bytes,
                           std::size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = 1;
  const char type = src == stream::Source::Ras ? kMsgRasData : kMsgJobData;
  while (!bytes.empty()) {
    const std::size_t n = std::min(chunk_bytes, bytes.size());
    send_raw(encode_message(type, bytes.substr(0, n)));
    bytes.remove_prefix(n);
  }
}

ReplyFields WireClient::flush() {
  return parse_fields(request(kMsgFlush, "", kMsgStats));
}

ReplyFields WireClient::finalize() {
  return parse_fields(request(kMsgFinalize, "", kMsgComplete));
}

}  // namespace coral::fleet
