#include "coral/fleet/wire.hpp"

#include <cstring>

#include "coral/common/error.hpp"

namespace coral::fleet {

std::string encode_message(char type, std::string_view body) {
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(type);
  payload.append(body);
  const auto size = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = bin::crc32(payload.data(), payload.size());
  std::string out;
  out.reserve(bin::kBlockHeaderBytes + payload.size());
  out.append(bin::kBlockMagic, sizeof bin::kBlockMagic);
  out.append(reinterpret_cast<const char*>(&size), sizeof size);
  out.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  out.append(payload);
  return out;
}

bool valid_tenant_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

}  // namespace

std::string encode_handshake(const Handshake& hs) {
  std::string body;
  put_u16(body, static_cast<std::uint16_t>(hs.tenant.size()));
  body.append(hs.tenant);
  put_u16(body, static_cast<std::uint16_t>(hs.machine.size()));
  body.append(hs.machine);
  body.push_back(hs.mode == ParseMode::Strict ? 1 : 0);
  body.push_back(hs.shed_overflow ? 1 : 0);
  return encode_message(kMsgHello, body);
}

Handshake decode_handshake(std::string_view body) {
  bin::PayloadCursor cur(body, 0, "fleet handshake");
  Handshake hs;
  const auto tenant_len = cur.get<std::uint16_t>();
  hs.tenant = cur.get_string(tenant_len);
  const auto machine_len = cur.get<std::uint16_t>();
  hs.machine = cur.get_string(machine_len);
  const auto mode = cur.get<std::uint8_t>();
  if (mode > 1) throw ParseError("bad parse mode in fleet handshake");
  hs.mode = mode == 1 ? ParseMode::Strict : ParseMode::Lenient;
  const auto shed = cur.get<std::uint8_t>();
  if (shed > 1) throw ParseError("bad overflow policy in fleet handshake");
  hs.shed_overflow = shed == 1;
  if (!cur.at_end()) throw ParseError("trailing bytes in fleet handshake");
  if (!valid_tenant_name(hs.tenant)) {
    throw ParseError("bad tenant name in fleet handshake (want [A-Za-z0-9_.-]{1,64})");
  }
  return hs;
}

}  // namespace coral::fleet
