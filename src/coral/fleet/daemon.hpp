#pragma once

#include <memory>
#include <string>
#include <vector>

#include "coral/context.hpp"
#include "coral/fleet/wire.hpp"
#include "coral/stream/session.hpp"

namespace coral::fleet {

/// Daemon front-door configuration. Port 0 binds an ephemeral port (read it
/// back with wire_port()/metrics_port() — the test and example path);
/// metrics_port -1 disables the scrape endpoint.
struct DaemonConfig {
  std::string bind = "127.0.0.1";
  int wire_port = 0;
  int metrics_port = 0;
  /// Threads in the shared analysis pool all tenants' finalize runs on.
  /// 0 = no pool: finalize runs serially on the connection thread (results
  /// are identical either way — the pool only buys wall-clock).
  std::size_t pool_threads = 0;
  /// Per-source ingest quota handed to each tenant's Session.
  std::size_t queue_bytes = std::size_t{4} << 20;
  /// Span ring capacity per tenant's obs::Collector (0 = unbounded; the
  /// default keeps a resident daemon's trace memory flat).
  std::size_t span_capacity = 4096;
  core::CoAnalysisConfig analysis;
  /// Optional correlation-rule table: when set, every tenant's session runs
  /// the online predictor over its live RAS feed (predict.* counters and the
  /// coral_session_predictions gauge land on /metrics). Non-owning; must
  /// outlive the daemon.
  const predict::RuleTable* rules = nullptr;
};

/// One tenant's public face for status listings.
struct TenantStatus {
  std::string name;
  std::string machine;
  stream::SessionStats stats;
};

/// The resident fleet daemon: N tenants (one per machine/log-source), each
/// a named stream::Session wrapping the co-analysis engine, all sharing one
/// Context pool. Connections speak the CBLK-framed wire protocol; a
/// handshake names the tenant and its registered MachineModel, data chunks
/// carry raw v2 log-file bytes, and Finalize runs the full co-analysis and
/// replies with result/log fingerprints for parity checking. Live counters
/// per tenant are scrapeable mid-run at GET /metrics (Prometheus text
/// exposition, tenant="..." label dimension).
///
/// Several connections may feed one tenant (Session::feed is thread-safe);
/// two tenants never contend except on the shared pool at finalize time.
class Daemon {
 public:
  explicit Daemon(DaemonConfig config = {},
                  const ras::Catalog& catalog = ras::default_catalog());
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen on both ports and start the accept threads. Throws
  /// Error when a port cannot be bound.
  void start();
  /// Close the doors, unblock every connection, join all threads. Safe to
  /// call twice; the destructor calls it.
  void stop();

  /// Bound ports (valid after start(); ephemeral requests resolved).
  int wire_port() const;
  int metrics_port() const;

  std::vector<TenantStatus> tenants() const;
  /// The same Prometheus exposition GET /metrics serves: every tenant's
  /// live counters, histograms and span ledger under tenant="..." labels.
  std::string metrics_text() const;

 private:
  struct Tenant;
  struct Conn;
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace coral::fleet
