#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "coral/common/binary_frame.hpp"
#include "coral/common/ingest.hpp"

namespace coral::fleet {

/// The fleet wire protocol: every message is one CBLK frame (the same
/// `"CBLK" | u32 size | u32 crc32 | payload` framing the binary v2/v3 log
/// files use), whose payload starts with a one-byte message type. Reusing
/// the log framing means the daemon's front door gets CRC integrity and
/// self-locating resync for free — and the corrupt-frame fuzz corpus built
/// for the file formats replays against the socket path unchanged.
///
/// Conversation shape (client drives, server replies):
///
///   -> Hello      name the tenant, its MachineModel and parse mode
///   <- Ok | Error
///   -> RasData / JobData   raw v2/v3 *file* bytes, any chunking
///   -> Flush      drain the backlog now
///   <- Stats      live SessionStats as key=value lines
///   -> Finalize   end of both streams; run the co-analysis
///   <- Complete   summary + result/log fingerprints as key=value lines
///
/// Data chunks carry the log *file* bytes verbatim (header + framed
/// blocks), not re-framed records: transport framing is strict (a damaged
/// wire frame is a protocol error -> Error + close), while damage semantics
/// of the payload bytes stay the session decoders' business, identical to
/// reading the same file offline.
inline constexpr char kMsgHello = 'H';
inline constexpr char kMsgOk = 'O';
inline constexpr char kMsgError = 'E';     ///< body: human-readable reason
inline constexpr char kMsgRasData = 'R';   ///< body: raw RAS v2/v3 file bytes
inline constexpr char kMsgJobData = 'J';   ///< body: raw job v2/v3 file bytes
inline constexpr char kMsgFlush = 'F';
inline constexpr char kMsgStats = 'S';     ///< body: key=value lines
inline constexpr char kMsgFinalize = 'Q';
inline constexpr char kMsgComplete = 'C';  ///< body: key=value lines

/// Hello payload: which tenant this connection feeds, which registered
/// MachineModel it runs on, and how strict the ingest should be.
struct Handshake {
  std::string tenant;
  std::string machine;  ///< machine::find_model() name, e.g. "bgp"
  ParseMode mode = ParseMode::Lenient;
  /// Over-quota policy: false = Reject (server pumps inline, lossless),
  /// true = Shed (drop with accounting).
  bool shed_overflow = false;
};

/// Frame one message: type byte + body, CBLK-framed.
std::string encode_message(char type, std::string_view body);

std::string encode_handshake(const Handshake& hs);
/// Parse a Hello body (the message type byte already stripped). Throws
/// ParseError on a malformed or implausible handshake.
Handshake decode_handshake(std::string_view body);

/// Incremental strict-mode message parser for one connection: push() raw
/// socket bytes, next() yields complete messages (type byte + body) in
/// order. Any framing damage — bad magic, CRC mismatch, implausible size —
/// throws ParseError: transport corruption is a protocol error, not
/// something to resync past (the caller replies Error and closes).
class MessageReader {
 public:
  MessageReader() : frames_(ParseMode::Strict, nullptr, "fleet wire") {}

  void push(std::string_view bytes) { frames_.push(bytes); }
  bool next(std::string& message) { return frames_.next(message); }
  std::size_t buffered() const { return frames_.buffered(); }

 private:
  bin::FrameAssembler frames_;
};

/// Tenant names become Prometheus label values and map keys; constrain them
/// to [A-Za-z0-9_.-], 1..64 bytes, so no escaping layer is ever needed.
bool valid_tenant_name(std::string_view name);

}  // namespace coral::fleet
