#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "coral/fleet/wire.hpp"
#include "coral/stream/session.hpp"

namespace coral::fleet {

/// A reply body's key=value lines, parsed. Fingerprints arrive as 16-digit
/// hex strings under "result_fp"/"log_fp".
using ReplyFields = std::map<std::string, std::string>;
ReplyFields parse_fields(std::string_view body);

/// Blocking feeder-side client for the fleet wire protocol — what the
/// feeder example, the parity tests and the CI smoke stage all drive. One
/// client is one connection is (at most) one tenant. Not thread-safe; run
/// one per feeder thread.
class WireClient {
 public:
  /// Connect to a daemon's wire port. Throws Error on refusal.
  WireClient(const std::string& host, int port);
  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Introduce the tenant. Throws Error with the daemon's reason on
  /// rejection (unknown machine, name clash, bad name).
  void handshake(const Handshake& hs);

  /// Stream raw v2 log-file bytes, re-framed into wire messages of at most
  /// `chunk_bytes` each. Data messages are unacknowledged (errors surface
  /// at the next flush()/finalize(), or as a hangup).
  void send_data(stream::Source src, std::string_view bytes,
                 std::size_t chunk_bytes = std::size_t{256} << 10);

  /// Drain the tenant's backlog and fetch live SessionStats.
  ReplyFields flush();

  /// End both streams, run the co-analysis, fetch the summary +
  /// result/log fingerprints.
  ReplyFields finalize();

  void close();

 private:
  void send_raw(std::string_view bytes);
  /// Block until one complete message arrives; returns type byte + body.
  std::string read_message();
  /// Send `type`+body, await a reply of `expect` type; 'E' replies throw.
  std::string request(char type, std::string_view body, char expect);

  int fd_ = -1;
  MessageReader reader_;
};

}  // namespace coral::fleet
