#pragma once

#include <cstdint>

#include "coral/core/pipeline.hpp"

namespace coral::fleet {

/// Order-sensitive FNV-1a digest of a CoAnalysisResult: decoded inputs'
/// identities are already folded in through the filtered events, so two
/// equal fingerprints mean the whole methodology produced the same output
/// byte for byte (doubles are hashed by bit pattern — same-arch exactness,
/// which is what the session-vs-offline parity suite needs). The daemon
/// returns this with the finalize reply so a feeder can assert parity
/// against its own offline run without shipping the result back.
std::uint64_t result_fingerprint(const core::CoAnalysisResult& result);

/// The same digest over a raw log pair (every record field, in order) —
/// the input-side check: did the wire path decode the exact events and
/// jobs the offline readers decode?
std::uint64_t log_fingerprint(const ras::RasLog& ras, const joblog::JobLog& jobs);

}  // namespace coral::fleet
