#include "coral/fleet/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "coral/common/error.hpp"
#include "coral/fleet/fingerprint.hpp"

namespace coral::fleet {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Bind + listen on host:port (port 0 = ephemeral). Returns the fd.
int listen_on(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("bad bind address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("cannot listen on " + host + ":" + std::to_string(port) + ": " + why);
  }
  return fd;
}

int bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void append_kv(std::string& out, std::string_view key, std::uint64_t value) {
  out.append(key);
  out.push_back('=');
  out.append(std::to_string(value));
  out.push_back('\n');
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[i] = digits[v & 0xF];
  return out;
}

}  // namespace

/// One tenant: a named Session plus its own obs::Collector (so /metrics can
/// carve the fleet by tenant label). Address-stable behind a unique_ptr —
/// the Session's Context points back at the collector.
struct Daemon::Tenant {
  std::string name;
  std::string machine_name;
  ParseMode mode = ParseMode::Lenient;
  obs::Collector collector;
  std::unique_ptr<stream::Session> session;
  std::mutex mu;              ///< guards complete_body
  std::string complete_body;  ///< cached Finalize reply (idempotent Q)
};

class Daemon::Impl {
 public:
  Impl(DaemonConfig config, const ras::Catalog& catalog)
      : config_(std::move(config)), catalog_(catalog) {}

  ~Impl() { stop(); }

  void start() {
    if (running_.exchange(true)) return;
    if (config_.pool_threads > 0) pool_.emplace(config_.pool_threads);
    wire_fd_ = listen_on(config_.bind, config_.wire_port);
    wire_port_ = bound_port(wire_fd_);
    if (config_.metrics_port >= 0) {
      metrics_fd_ = listen_on(config_.bind, config_.metrics_port);
      metrics_port_ = bound_port(metrics_fd_);
      metrics_thread_ = std::thread([this] { serve_metrics(); });
    }
    wire_thread_ = std::thread([this] { serve_wire(); });
  }

  void stop() {
    if (!running_.exchange(false)) return;
    // Wake the accept loops, then every in-flight connection's recv.
    for (int* fd : {&wire_fd_, &metrics_fd_}) {
      if (*fd >= 0) {
        ::shutdown(*fd, SHUT_RDWR);
        ::close(*fd);
        *fd = -1;
      }
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (wire_thread_.joinable()) wire_thread_.join();
    if (metrics_thread_.joinable()) metrics_thread_.join();
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
  }

  int wire_port() const { return wire_port_; }
  int metrics_port() const { return metrics_port_; }

  std::vector<TenantStatus> tenants() const {
    std::vector<TenantStatus> out;
    std::lock_guard<std::mutex> lock(tenants_mu_);
    out.reserve(tenants_.size());
    for (const auto& [name, t] : tenants_) {
      out.push_back({name, t->machine_name, t->session->snapshot()});
    }
    return out;
  }

  std::string metrics_text() const {
    // Collector families first (counters, histograms, spans), then the
    // session gauges the collectors do not carry — each family's # TYPE
    // emitted once, samples per tenant, as the exposition format requires.
    std::vector<obs::LabeledSnapshot> snaps;
    std::vector<std::pair<std::string, stream::SessionStats>> stats;
    {
      std::lock_guard<std::mutex> lock(tenants_mu_);
      snaps.reserve(tenants_.size());
      for (const auto& [name, t] : tenants_) {
        snaps.push_back({"tenant=\"" + name + "\"", t->collector.snapshot()});
        stats.emplace_back(name, t->session->snapshot());
      }
    }
    std::string out = obs::prometheus_text(snaps);
    struct Gauge {
      const char* family;
      std::uint64_t (*pick)(const stream::SessionStats&);
    };
    static constexpr Gauge kGauges[] = {
        {"coral_session_backlog_bytes",
         [](const stream::SessionStats& s) { return s.backlog_bytes; }},
        {"coral_session_ras_records",
         [](const stream::SessionStats& s) { return s.ras_records; }},
        {"coral_session_job_records",
         [](const stream::SessionStats& s) { return s.job_records; }},
        {"coral_session_predictions",
         [](const stream::SessionStats& s) { return s.predictions; }},
        {"coral_session_finalized",
         [](const stream::SessionStats& s) {
           return std::uint64_t{s.finalized ? 1u : 0u};
         }},
    };
    for (const Gauge& g : kGauges) {
      out += "# TYPE " + std::string(g.family) + " gauge\n";
      for (const auto& [name, s] : stats) {
        out += std::string(g.family) + "{tenant=\"" + name +
               "\"} " + std::to_string(g.pick(s)) + "\n";
      }
    }
    return out;
  }

 private:
  static bool send_message(int fd, char type, std::string_view body) {
    return send_all(fd, encode_message(type, body));
  }

  /// Resolve a handshake to its tenant, creating the session on first
  /// sight. A reconnect (or a second feeder for the same tenant) must agree
  /// on machine and mode — silently switching models mid-run would corrupt
  /// the parity story.
  Tenant& tenant_for(const Handshake& hs) {
    const machine::MachineModel* model = machine::find_model(hs.machine);
    if (model == nullptr) {
      throw Error("unknown machine model '" + hs.machine +
                  "' (register_model() before connecting)");
    }
    std::lock_guard<std::mutex> lock(tenants_mu_);
    auto it = tenants_.find(hs.tenant);
    if (it != tenants_.end()) {
      Tenant& t = *it->second;
      if (t.machine_name != hs.machine || t.mode != hs.mode) {
        throw Error("tenant '" + hs.tenant + "' already registered on machine '" +
                    t.machine_name + "'");
      }
      return t;
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = hs.tenant;
    tenant->machine_name = hs.machine;
    tenant->mode = hs.mode;
    tenant->collector.set_span_capacity(config_.span_capacity);
    stream::SessionConfig sc;
    sc.mode = hs.mode;
    sc.queue_bytes = config_.queue_bytes;
    sc.overflow = hs.shed_overflow ? stream::SessionConfig::Overflow::Shed
                                   : stream::SessionConfig::Overflow::Reject;
    sc.analysis = config_.analysis;
    sc.rules = config_.rules;
    Context ctx(catalog_);
    ctx.with_machine(*model).with_obs(&tenant->collector);
    if (pool_) ctx.with_pool(&*pool_);
    tenant->session =
        std::make_unique<stream::Session>(hs.tenant, sc, ctx);
    Tenant& ref = *tenant;
    tenants_.emplace(hs.tenant, std::move(tenant));
    return ref;
  }

  static std::string stats_body(const Tenant& t) {
    const stream::SessionStats s = t.session->snapshot();
    std::string out;
    out += "tenant=" + t.name + "\n";
    append_kv(out, "bytes_accepted", s.bytes_accepted);
    append_kv(out, "bytes_decoded", s.bytes_decoded);
    append_kv(out, "bytes_shed", s.bytes_shed);
    append_kv(out, "chunks_shed", s.chunks_shed);
    append_kv(out, "backlog_bytes", s.backlog_bytes);
    append_kv(out, "ras_records", s.ras_records);
    append_kv(out, "job_records", s.job_records);
    append_kv(out, "predictions", s.predictions);
    append_kv(out, "finalized", s.finalized ? 1 : 0);
    return out;
  }

  /// Run one tenant's finalize and build the Complete reply. Serialized
  /// across tenants: they share one analysis pool, and ThreadPool::wait_idle
  /// is a whole-pool barrier, so interleaved finalizes would observe each
  /// other's tasks.
  std::string finalize_tenant(Tenant& t) {
    {
      std::lock_guard<std::mutex> lock(t.mu);
      if (!t.complete_body.empty()) return t.complete_body;
    }
    std::lock_guard<std::mutex> flock(finalize_mu_);
    {
      std::lock_guard<std::mutex> lock(t.mu);
      if (!t.complete_body.empty()) return t.complete_body;
    }
    const stream::SessionResult r = t.session->finalize();
    std::string body;
    body += "tenant=" + t.name + "\n";
    body += "result_fp=" + hex64(result_fingerprint(r.analysis)) + "\n";
    body += "log_fp=" + hex64(log_fingerprint(r.ras, r.jobs)) + "\n";
    append_kv(body, "ras_records", r.ras.size());
    append_kv(body, "job_records", r.jobs.size());
    append_kv(body, "ras_malformed", r.ras_report.total_malformed());
    append_kv(body, "job_malformed", r.jobs_report.total_malformed());
    append_kv(body, "system_interruptions", r.analysis.system_interruptions);
    append_kv(body, "application_interruptions",
              r.analysis.application_interruptions);
    std::lock_guard<std::mutex> lock(t.mu);
    t.complete_body = body;
    return t.complete_body;
  }

  /// Dispatch one wire message. Returns false to close the connection.
  bool handle_message(int fd, Tenant*& tenant, const std::string& msg) {
    if (msg.empty()) {
      send_message(fd, kMsgError, "empty message");
      return false;
    }
    const char type = msg[0];
    const std::string_view body(msg.data() + 1, msg.size() - 1);
    if (type == kMsgHello) {
      if (tenant != nullptr) {
        send_message(fd, kMsgError, "duplicate handshake");
        return false;
      }
      tenant = &tenant_for(decode_handshake(body));
      return send_message(fd, kMsgOk, "tenant=" + tenant->name + "\n");
    }
    if (tenant == nullptr) {
      send_message(fd, kMsgError, "handshake required before other messages");
      return false;
    }
    switch (type) {
      case kMsgRasData:
      case kMsgJobData: {
        const auto src = type == kMsgRasData ? stream::Source::Ras
                                             : stream::Source::Jobs;
        // Admission backpressure: a Rejected feed means the backlog is at
        // quota — pump it down on this thread (the tenant's own decode
        // work) and retry. Lossless by construction; Shed tenants account
        // their drops inside the session.
        while (tenant->session->feed(src, body) == stream::Admission::Rejected) {
          if (tenant->session->snapshot().finalized) {
            send_message(fd, kMsgError,
                         "tenant '" + tenant->name + "' already finalized");
            return false;
          }
          tenant->session->pump();
        }
        // Decode eagerly so /metrics shows live progress, not queue depth.
        tenant->session->pump();
        return true;
      }
      case kMsgFlush:
        tenant->session->flush();
        return send_message(fd, kMsgStats, stats_body(*tenant));
      case kMsgFinalize:
        return send_message(fd, kMsgComplete, finalize_tenant(*tenant));
      default:
        send_message(fd, kMsgError,
                     std::string("unknown message type '") + type + "'");
        return false;
    }
  }

  void handle_connection(int fd) {
    MessageReader reader;
    Tenant* tenant = nullptr;
    std::string msg;
    char buf[64 << 10];
    bool alive = true;
    while (alive && running_.load(std::memory_order_relaxed)) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      try {
        reader.push(std::string_view(buf, static_cast<std::size_t>(n)));
        while (reader.next(msg)) {
          if (!handle_message(fd, tenant, msg)) {
            alive = false;
            break;
          }
        }
      } catch (const Error& e) {
        // Wire-frame damage, bad handshakes and strict-mode ingest errors
        // all land here: report and hang up. The tenant (if any) stays
        // registered — its counters keep telling the story on /metrics.
        send_message(fd, kMsgError, e.what());
        alive = false;
      }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(fd);
  }

  void serve_wire() {
    const int listen_fd = wire_fd_;
    while (running_.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (running_.load(std::memory_order_relaxed) && errno == EINTR) continue;
        break;
      }
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
    }
  }

  /// Minimal scrape endpoint: every request gets the full exposition (the
  /// path is not inspected — a daemon serves exactly one document). Serial
  /// accept loop; scrapes are rare and the document is small.
  void serve_metrics() {
    const int listen_fd = metrics_fd_;
    while (running_.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (running_.load(std::memory_order_relaxed) && errno == EINTR) continue;
        break;
      }
      char buf[8 << 10];
      // One read is enough for any real GET; we reply regardless.
      (void)::recv(fd, buf, sizeof buf, 0);
      const std::string body = metrics_text();
      std::string resp =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " + std::to_string(body.size()) + "\r\n"
          "Connection: close\r\n\r\n";
      resp += body;
      send_all(fd, resp);
      ::close(fd);
    }
  }

  const DaemonConfig config_;
  const ras::Catalog& catalog_;
  std::optional<par::ThreadPool> pool_;

  std::atomic<bool> running_{false};
  int wire_fd_ = -1;
  int metrics_fd_ = -1;
  int wire_port_ = 0;
  int metrics_port_ = 0;
  std::thread wire_thread_;
  std::thread metrics_thread_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  std::mutex conns_mu_;
  std::set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::mutex finalize_mu_;
};

Daemon::Daemon(DaemonConfig config, const ras::Catalog& catalog)
    : impl_(std::make_unique<Impl>(std::move(config), catalog)) {}

Daemon::~Daemon() = default;

void Daemon::start() { impl_->start(); }
void Daemon::stop() { impl_->stop(); }
int Daemon::wire_port() const { return impl_->wire_port(); }
int Daemon::metrics_port() const { return impl_->metrics_port(); }
std::vector<TenantStatus> Daemon::tenants() const { return impl_->tenants(); }
std::string Daemon::metrics_text() const { return impl_->metrics_text(); }

}  // namespace coral::fleet
