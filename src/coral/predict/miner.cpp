#include "coral/predict/miner.hpp"

#include <algorithm>
#include <mutex>

#include "coral/bgp/location.hpp"
#include "coral/common/error.hpp"
#include "coral/core/pipeline.hpp"

namespace coral::predict {

namespace {

/// Same-midplane test on packed loc keys: rack and midplane-within-rack
/// fields equal, ignoring kind/card/sub (a node card and a compute card on
/// one midplane co-locate). Rack-level keys have no midplane field, so
/// either side being rack-level degrades the test to same-rack — the rack
/// touches all of its midplanes.
bool same_zone(std::uint32_t a, std::uint32_t b) {
  const bool rack_a = bgp::packed_kind(a) == bgp::LocationKind::Rack;
  const bool rack_b = bgp::packed_kind(b) == bgp::LocationKind::Rack;
  if (rack_a || rack_b) return bgp::packed_rack(a) == bgp::packed_rack(b);
  return ((a ^ b) & 0x00FFF000u) == 0;
}

}  // namespace

RuleTable mine_rules(const core::CharColumns& cols,
                     const core::IdentificationResult& identification,
                     const ras::Catalog& catalog, const MinerConfig& config,
                     par::ThreadPool* pool) {
  CORAL_EXPECTS(config.window > 0);
  const std::size_t n = cols.group_count();

  // Dense fatal-code remap: group codes are all FATAL (the filter pipeline
  // only groups fatal records), so the co-occurrence matrices are F x F,
  // not catalog-size squared.
  const auto fatal = catalog.fatal_ids();
  const std::size_t f = fatal.size();
  std::vector<std::int32_t> dense(catalog.size(), -1);
  for (std::size_t i = 0; i < f; ++i) dense[static_cast<std::size_t>(fatal[i])] = static_cast<std::int32_t>(i);

  // Global integer accumulators; per-chunk partials are summed under a lock,
  // so the totals are independent of chunking and thread count.
  std::vector<std::uint32_t> occurrences(f, 0);
  std::vector<std::uint32_t> support_mid(f * f, 0);
  std::vector<std::uint32_t> support_mach(f * f, 0);
  std::mutex merge_mu;

  par::parallel_for_chunks(
      n, 256,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint32_t> occ(f, 0);
        std::vector<std::uint32_t> mid(f * f, 0);
        std::vector<std::uint32_t> mach(f * f, 0);
        // Generation-stamped markers: first occurrence of a target per
        // precursor occurrence counts once, per scope.
        std::vector<std::uint32_t> seen_mid(f, 0);
        std::vector<std::uint32_t> seen_mach(f, 0);
        std::uint32_t stamp = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const auto p = dense[static_cast<std::size_t>(cols.group_code[i])];
          if (p < 0) continue;
          ++occ[static_cast<std::size_t>(p)];
          ++stamp;
          const TimePoint t = cols.group_time[i];
          const std::uint32_t loc = cols.group_loc[i];
          const std::size_t row = static_cast<std::size_t>(p) * f;
          for (std::size_t j = i + 1; j < n && cols.group_time[j] - t <= config.window; ++j) {
            const auto q = dense[static_cast<std::size_t>(cols.group_code[j])];
            if (q < 0) continue;
            const auto qi = static_cast<std::size_t>(q);
            if (seen_mach[qi] != stamp) {
              seen_mach[qi] = stamp;
              ++mach[row + qi];
            }
            if (seen_mid[qi] != stamp && same_zone(loc, cols.group_loc[j])) {
              seen_mid[qi] = stamp;
              ++mid[row + qi];
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        for (std::size_t k = 0; k < f; ++k) occurrences[k] += occ[k];
        for (std::size_t k = 0; k < f * f; ++k) {
          support_mid[k] += mid[k];
          support_mach[k] += mach[k];
        }
      },
      pool);

  RuleTable table;
  for (std::size_t pi = 0; pi < f; ++pi) {
    const std::uint32_t count = occurrences[pi];
    if (count == 0) continue;
    const double floor_mach = config.min_confidence * static_cast<double>(count);
    const double floor_mid = config.min_confidence_mid * static_cast<double>(count);
    for (std::size_t ti = 0; ti < f; ++ti) {
      if (config.restrict_targets) {
        const auto it = identification.verdicts.find(fatal[ti]);
        if (it == identification.verdicts.end() ||
            it->second != core::ErrcodeVerdict::InterruptionRelated)
          continue;
      }
      Rule r;
      r.precursor = fatal[pi];
      r.target = fatal[ti];
      r.window = config.window;
      r.precursor_count = count;
      const std::uint32_t mid = support_mid[pi * f + ti];
      const std::uint32_t mach = support_mach[pi * f + ti];
      // The midplane-scoped rule is the actionable one; fall back to the
      // machine-wide rule only when same-midplane support is too thin.
      if (mid >= config.min_support && static_cast<double>(mid) >= floor_mid) {
        r.scope = RuleScope::Midplane;
        r.support = mid;
      } else if (mach >= config.min_support && static_cast<double>(mach) >= floor_mach) {
        r.scope = RuleScope::Machine;
        r.support = mach;
      } else {
        continue;
      }
      table.rules.push_back(r);
    }
  }

  if (config.max_rules > 0 && table.rules.size() > config.max_rules) {
    std::stable_sort(table.rules.begin(), table.rules.end(),
                     [](const Rule& a, const Rule& b) { return a.support > b.support; });
    table.rules.resize(config.max_rules);
    std::sort(table.rules.begin(), table.rules.end(), [](const Rule& a, const Rule& b) {
      if (a.precursor != b.precursor) return a.precursor < b.precursor;
      return a.target < b.target;
    });
  }
  return table;
}

RuleTable mine_rules(const core::CoAnalysisResult& analysis, const joblog::JobLog& jobs,
                     const MinerConfig& config, const Context& ctx) {
  obs::Span span(ctx.obs(), "predict.mine");
  const core::CharColumns cols =
      core::build_char_columns(analysis.filtered, analysis.matches, jobs, ctx.pool());
  RuleTable table =
      mine_rules(cols, analysis.identification, ctx.catalog(), config, ctx.pool());
  span.counts(cols.group_count(), table.rules.size());
  CORAL_OBS_COUNT(ctx.obs(), "predict.rules_mined", table.rules.size());
  return table;
}

}  // namespace coral::predict
