#include "coral/predict/rules.hpp"

#include <cstring>
#include <sstream>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"

namespace coral::predict {

namespace {

constexpr char kMagic[4] = {'C', 'R', 'U', 'L'};
constexpr std::size_t kHeaderBytes = sizeof kMagic + sizeof(std::uint32_t);
constexpr char kRulesTag = 'T';

void append_raw(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void append_value(std::string& out, T value) {
  append_raw(out, &value, sizeof value);
}

[[noreturn]] void reject(const std::string& detail) {
  throw ParseError("rule table: " + detail);
}

}  // namespace

const char* to_string(RuleScope scope) {
  switch (scope) {
    case RuleScope::Midplane:
      return "midplane";
    case RuleScope::Machine:
      return "machine";
  }
  return "?";
}

std::string RuleTable::serialize() const {
  std::string payload;
  payload.reserve(1 + sizeof(std::uint32_t) + rules.size() * 25);
  payload.push_back(kRulesTag);
  append_value(payload, static_cast<std::uint32_t>(rules.size()));
  for (const Rule& r : rules) {
    append_value(payload, static_cast<std::int32_t>(r.precursor));
    append_value(payload, static_cast<std::int32_t>(r.target));
    append_value(payload, static_cast<std::uint8_t>(r.scope));
    append_value(payload, static_cast<std::int64_t>(r.window));
    append_value(payload, r.support);
    append_value(payload, r.precursor_count);
  }

  std::string out;
  out.reserve(kHeaderBytes + bin::kBlockHeaderBytes + payload.size());
  append_raw(out, kMagic, sizeof kMagic);
  append_value(out, kRuleTableVersion);
  bin::append_frame(out, payload);
  return out;
}

RuleTable RuleTable::deserialize(std::string_view bytes, const ras::Catalog& catalog) {
  if (bytes.size() < kHeaderBytes) reject("truncated header");
  if (bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0)
    reject("bad magic (not a CRUL rule table)");
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof kMagic, sizeof version);
  if (version != kRuleTableVersion)
    reject("unsupported version " + std::to_string(version));

  // Strict framing: the body must be exactly one intact CBLK block. The
  // assembler throws ParseError on CRC/size damage; a second frame or
  // trailing bytes are rejected here.
  bin::FrameAssembler frames(ParseMode::Strict, nullptr, "rule table");
  frames.push(bytes.substr(kHeaderBytes));
  frames.finish();
  std::string payload;
  if (!frames.next(payload)) reject("missing rule block");
  std::string extra;
  if (frames.next(extra) || frames.buffered() != 0)
    reject("trailing bytes after rule block");

  bin::PayloadCursor cur(payload, kHeaderBytes + bin::kBlockHeaderBytes, "rule table");
  if (cur.get<std::uint8_t>() != kRulesTag) reject("unknown block tag");
  const std::uint32_t count = cur.get<std::uint32_t>();
  const std::size_t per_rule = 4 + 4 + 1 + 8 + 4 + 4;
  if (cur.remaining() != static_cast<std::size_t>(count) * per_rule)
    reject("rule count disagrees with block size");

  RuleTable table;
  table.rules.reserve(count);
  const auto max_code = static_cast<std::int32_t>(catalog.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    Rule r;
    r.precursor = cur.get<std::int32_t>();
    r.target = cur.get<std::int32_t>();
    const auto scope = cur.get<std::uint8_t>();
    r.window = cur.get<std::int64_t>();
    r.support = cur.get<std::uint32_t>();
    r.precursor_count = cur.get<std::uint32_t>();
    const std::string at = " (rule " + std::to_string(i) + ")";
    if (r.precursor < 0 || r.precursor >= max_code) reject("precursor code out of catalog range" + at);
    if (r.target < 0 || r.target >= max_code) reject("target code out of catalog range" + at);
    if (scope > static_cast<std::uint8_t>(RuleScope::Machine)) reject("invalid scope" + at);
    r.scope = static_cast<RuleScope>(scope);
    if (r.window <= 0) reject("non-positive window" + at);
    if (r.precursor_count == 0) reject("zero precursor count" + at);
    if (r.support > r.precursor_count) reject("support exceeds precursor count" + at);
    table.rules.push_back(r);
  }
  if (!cur.at_end()) reject("trailing bytes in rule block");
  return table;
}

std::string describe(const RuleTable& table, const ras::Catalog& catalog) {
  std::ostringstream out;
  out << table.rules.size() << " rule(s)\n";
  for (std::size_t i = 0; i < table.rules.size(); ++i) {
    const Rule& r = table.rules[i];
    out << "  [" << i << "] " << catalog.info(r.precursor).name << " -> "
        << catalog.info(r.target).name << "  scope=" << to_string(r.scope)
        << " window=" << r.window / kUsecPerMin << "min"
        << " confidence=" << r.support << "/" << r.precursor_count << " ("
        << static_cast<int>(r.confidence() * 100.0 + 0.5) << "%)\n";
  }
  return out.str();
}

}  // namespace coral::predict
