#include "coral/predict/evaluate.hpp"

#include <algorithm>
#include <unordered_map>

#include "coral/core/pipeline.hpp"

namespace coral::predict {

namespace {

bool zone_covers(const machine::LocCodec& codec, std::int32_t zone, std::uint32_t key) {
  if (zone < 0) return true;
  if (codec.is_rack(key)) {
    const machine::MidplaneId first = codec.rack_first_midplane(key);
    return zone >= first && zone < first + codec.midplanes_per_rack;
  }
  return codec.midplane_of(key) == zone;
}

/// One ground-truth system-failure manifestation, time-ordered.
struct Manifestation {
  TimePoint time;
  std::uint32_t loc_key = 0;
};

/// Machine time lost to system-failure interruptions, in node-hours, plus
/// the interruption count. Every truth interruption whose fault the
/// injector labelled SystemFailure wastes its job's whole elapsed run (the
/// paper's no-checkpoint accounting) and then holds the partition for
/// post-failure cleanup/reboot (`hold`) before anything can boot there.
struct LostWork {
  double node_hours = 0;
  std::size_t interruptions = 0;
};

LostWork lost_work(const synth::GroundTruth& truth, const joblog::JobLog& jobs,
                   const machine::MachineModel& machine, Usec hold) {
  std::unordered_map<std::int64_t, const joblog::JobRecord*> by_id;
  by_id.reserve(jobs.size());
  for (const auto& j : jobs.jobs()) by_id.emplace(j.job_id, &j);
  const double nodes_per_midplane = machine.topology().nodes_per_midplane;
  LostWork out;
  for (const auto& intr : truth.interruptions) {
    const auto fi = static_cast<std::size_t>(intr.fault_instance);
    if (intr.fault_instance < 0 || fi >= truth.faults.size()) continue;
    if (truth.faults[fi].nature != ras::FaultNature::SystemFailure) continue;
    ++out.interruptions;
    const auto it = by_id.find(intr.job_id);
    if (it == by_id.end()) continue;
    const joblog::JobRecord& job = *it->second;
    out.node_hours += static_cast<double>(job.runtime() + hold) /
                      static_cast<double>(kUsecPerHour) *
                      static_cast<double>(job.size_midplanes()) * nodes_per_midplane;
  }
  return out;
}

}  // namespace

Evaluation evaluate(const std::vector<Prediction>& predictions, const RuleTable& table,
                    const synth::GroundTruth& truth,
                    const machine::MachineModel& machine) {
  (void)table;  // reserved: per-rule breakdowns would resolve through it
  const machine::LocCodec& codec = machine.codec();

  std::vector<Manifestation> manifest;
  manifest.reserve(truth.faults.size());
  for (const auto& f : truth.faults) {
    if (f.nature != ras::FaultNature::SystemFailure) continue;
    manifest.push_back({f.time, f.location.packed()});
  }
  std::sort(manifest.begin(), manifest.end(),
            [](const Manifestation& a, const Manifestation& b) { return a.time < b.time; });

  Evaluation out;
  out.predictions = predictions.size();

  // Precision: a prediction is true when any system-failure manifestation
  // lands inside (issued, expires] in its zone.
  for (const Prediction& p : predictions) {
    auto it = std::upper_bound(
        manifest.begin(), manifest.end(), p.issued,
        [](TimePoint t, const Manifestation& m) { return t < m.time; });
    for (; it != manifest.end() && it->time <= p.expires; ++it) {
      if (zone_covers(codec, p.midplane, it->loc_key)) {
        ++out.true_predictions;
        break;
      }
    }
  }

  // Recall + lead time over the truth system-failure interruptions: caught
  // when an alarm issued before the interruption was still covering the
  // fault's location at interruption time.
  double lead_sum_minutes = 0;
  for (const auto& intr : truth.interruptions) {
    const auto fi = static_cast<std::size_t>(intr.fault_instance);
    if (intr.fault_instance < 0 || fi >= truth.faults.size()) continue;
    const auto& fault = truth.faults[fi];
    if (fault.nature != ras::FaultNature::SystemFailure) continue;
    ++out.events_total;
    const std::uint32_t key = fault.location.packed();
    const Prediction* earliest = nullptr;
    for (const Prediction& p : predictions) {
      if (p.issued >= intr.time) break;  // issue-ordered: nothing later covers
      if (intr.time <= p.expires && zone_covers(codec, p.midplane, key)) {
        earliest = &p;
        break;
      }
    }
    if (earliest != nullptr) {
      ++out.events_caught;
      lead_sum_minutes += static_cast<double>(intr.time - earliest->issued) /
                          static_cast<double>(kUsecPerMin);
    }
  }
  out.mean_lead_minutes =
      out.events_caught == 0 ? 0.0 : lead_sum_minutes / static_cast<double>(out.events_caught);
  return out;
}

PolicyComparison compare_policies(const synth::ScenarioConfig& config,
                                  const MinerConfig& miner, const Context& ctx) {
  obs::Span span(ctx.obs(), "predict.compare_policies");
  PolicyComparison out;

  const synth::SynthResult baseline = synth::generate(config, ctx);
  const core::CoAnalysisResult analysis =
      core::run_coanalysis(baseline.ras, baseline.jobs, {}, ctx);
  out.rules = mine_rules(analysis, baseline.jobs, miner, ctx);
  const std::vector<Prediction> predictions = replay(out.rules, baseline.ras, ctx.obs());
  out.eval = evaluate(predictions, out.rules, baseline.truth, *config.machine);
  const LostWork base =
      lost_work(baseline.truth, baseline.jobs, *config.machine, config.resubmit.failure_hold);
  out.baseline_lost_node_hours = base.node_hours;
  out.baseline_interruptions = base.interruptions;

  PredictionAdvisor advisor(out.rules, *config.machine, ctx.obs());
  synth::ScenarioConfig advised_config = config;
  advised_config.advisor = &advisor;
  const synth::SynthResult advised = synth::generate(advised_config, ctx);
  const LostWork adv =
      lost_work(advised.truth, advised.jobs, *config.machine, config.resubmit.failure_hold);
  out.advised_lost_node_hours = adv.node_hours;
  out.advised_interruptions = adv.interruptions;
  return out;
}

synth::ScenarioConfig eval_scenario(std::uint64_t seed, int days) {
  // The persistent-fault-heavy regime is the one where prediction has
  // something real to predict: a broken component keeps re-hitting jobs at
  // a fixed midplane until repaired, so a rule fired on the first
  // manifestation covers the whole repair window. (The interrupting-heavy
  // storm packs are dominated by one-shot faults with no precursors —
  // irreducible misses for any correlation predictor.)
  synth::ScenarioConfig config =
      synth::pack_scenario(machine::bgp_model(), "correlated_cascade", seed, days);
  // Persistent faults dominate, and they stay broken long enough that
  // keeping jobs off the midplane matters.
  config.faults.interrupting_rate_per_day = 0.15;
  config.faults.persistent_rate_per_day = 0.9;
  config.faults.repair_mean_hours = 6.0;
  // Variance control for the policy comparison: the default Intrepid size
  // ladder lets a single interrupted 32..80-midplane job swing lost
  // node-hours by more than the whole predictable loss, and wide-job wear
  // makes fault locations chase occupancy (avoidance then just moves the
  // target). Small uniform jobs turn the loss metric into many similar
  // increments and pin fault locations, so the advised-vs-baseline delta
  // measures the policy, not placement roulette.
  config.workload.job_sizes = {1, 2, 4};
  config.workload.size_weights = {46413, 11911, 4822};
  // Runtime buckets capped at 6400 s for the same reason: a single
  // interrupted 100-hour job would carry more node-hours than every
  // preventable re-hit combined.
  config.workload.runtime_weights = {{12282, 7300, 17339, 0},
                                     {1146, 2601, 6052, 0},
                                     {881, 901, 1026, 0}};
  return config;
}

}  // namespace coral::predict
