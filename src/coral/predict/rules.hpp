#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "coral/common/time.hpp"
#include "coral/ras/catalog.hpp"

namespace coral::predict {

/// Spatial reach of a correlation rule.
enum class RuleScope : std::uint8_t {
  /// Precursor and target manifest on the same midplane (rack-level events
  /// count for every midplane of their rack). The actionable scope: a
  /// fault-aware scheduler can drain exactly the predicted midplane.
  Midplane = 0,
  /// The precursor predicts a target anywhere on the machine within the
  /// window (LogMaster-style temporal-only rule).
  Machine = 1,
};

const char* to_string(RuleScope scope);

/// One mined correlation rule: an occurrence of `precursor` predicts an
/// occurrence of `target` within `window`, at `scope`. `support` counts
/// precursor occurrences that were in fact followed by the target;
/// `precursor_count` counts all precursor occurrences, so
/// support / precursor_count is the rule's empirical confidence.
struct Rule {
  ras::ErrcodeId precursor = 0;
  ras::ErrcodeId target = 0;
  RuleScope scope = RuleScope::Midplane;
  Usec window = 0;
  std::uint32_t support = 0;
  std::uint32_t precursor_count = 0;

  double confidence() const {
    return precursor_count == 0
               ? 0.0
               : static_cast<double>(support) / static_cast<double>(precursor_count);
  }

  friend bool operator==(const Rule& a, const Rule& b) = default;
};

/// Serialized rule-table format version (see RuleTable::serialize).
inline constexpr std::uint32_t kRuleTableVersion = 1;

/// A set of correlation rules, ordered deterministically by the miner
/// (precursor, then target, then scope). Serializable so rules mined
/// offline ship to the online predictor (and the fleet daemon) as a file.
///
/// The byte format reuses the log-store framing so the ingest hardening
/// carries over verbatim: an 8-byte header (magic "CRUL" + u32 version),
/// then exactly one CRC-framed CBLK block whose payload is
/// `'T' | u32 rule_count | rule_count x {i32 precursor, i32 target,
/// u8 scope, i64 window_usec, u32 support, u32 precursor_count}`.
/// deserialize() is strict by design — a prediction layer must never act
/// on a damaged table, so any framing damage, field corruption or trailing
/// garbage throws ParseError instead of degrading leniently.
struct RuleTable {
  std::vector<Rule> rules;

  std::size_t size() const { return rules.size(); }
  bool empty() const { return rules.empty(); }

  friend bool operator==(const RuleTable& a, const RuleTable& b) = default;

  std::string serialize() const;

  /// Parse and validate a serialized table. Every rule is checked against
  /// `catalog` (codes must index into it) and against the format's own
  /// invariants (valid scope, positive window, support <= precursor_count,
  /// nonzero precursor_count). Throws ParseError on any violation.
  static RuleTable deserialize(std::string_view bytes,
                               const ras::Catalog& catalog = ras::default_catalog());
};

/// Human-readable listing (one line per rule, confidence-annotated) for
/// `coral_logtool mine` and debugging.
std::string describe(const RuleTable& table, const ras::Catalog& catalog);

}  // namespace coral::predict
