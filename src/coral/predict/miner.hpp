#pragma once

#include "coral/context.hpp"
#include "coral/core/characterization.hpp"
#include "coral/core/identification.hpp"
#include "coral/predict/rules.hpp"

namespace coral::core {
struct CoAnalysisResult;
}

namespace coral::predict {

/// Mining thresholds. The defaults are tuned on the calibrated injector
/// scenarios: a 2 h window brackets both the persistent-fault re-hit chain
/// (repair takes hours, re-hits minutes apart) and storm cascades, and
/// 0.7 confidence is the precision floor the evaluation harness gates on.
struct MinerConfig {
  /// Max precursor -> target distance for a co-occurrence to count.
  Usec window = 2 * kUsecPerHour;
  /// Minimum supporting co-occurrences for a rule to be emitted.
  std::uint32_t min_support = 3;
  /// Minimum support / precursor_count for a machine-wide rule.
  double min_confidence = 0.7;
  /// Minimum support / precursor_count for a midplane-scoped rule. Lower on
  /// purpose: a midplane alarm costs one midplane's drain, so it is worth
  /// raising at confidences where a machine-wide alarm would cry wolf —
  /// and the machine-wide co-occurrence count is inflated by degraded-state
  /// bursts, so the same 0.7 bar would drown every localized chain.
  double min_confidence_mid = 0.35;
  /// Only emit rules whose target the identification step labelled
  /// InterruptionRelated (Observation 1: alarming on benign or idle-biased
  /// codes wastes every proactive action). Off mines all fatal targets.
  bool restrict_targets = true;
  /// Keep at most this many rules, highest-support first (0 = unlimited).
  std::size_t max_rules = 0;
};

/// Mine correlation rules from the filtered fatal groups (columnar walk over
/// `cols.group_time/group_code/group_loc`). For every precursor occurrence
/// the scan looks `config.window` ahead and counts, once per occurrence, the
/// target codes that follow — machine-wide and on the same midplane — then
/// emits every (precursor, target) pair whose support and confidence clear
/// the thresholds. Same-midplane rules win over machine-wide ones for a
/// pair (the actionable scope); a machine-wide rule is emitted only when the
/// midplane-scoped one fails the thresholds.
///
/// Deterministic: the per-chunk counts are integers summed over disjoint
/// ranges, so the result is exact-equal for any `pool` size (including
/// none), and rule order is (precursor, target) ascending.
RuleTable mine_rules(const core::CharColumns& cols,
                     const core::IdentificationResult& identification,
                     const ras::Catalog& catalog, const MinerConfig& config = {},
                     par::ThreadPool* pool = nullptr);

/// Convenience overload for callers holding a finished co-analysis: gathers
/// the shared columns and mines with the context's catalog and pool.
RuleTable mine_rules(const core::CoAnalysisResult& analysis, const joblog::JobLog& jobs,
                     const MinerConfig& config = {}, const Context& ctx = {});

}  // namespace coral::predict
