#include "coral/predict/predictor.hpp"

#include <algorithm>

namespace coral::predict {

namespace {

/// Build a CSR bucketing of rule indices by code. `key_of` selects the
/// bucketed field; codes beyond any rule's key simply get empty buckets.
void build_csr(const std::vector<Rule>& rules, bool by_target,
               std::vector<std::uint32_t>& offsets, std::vector<std::uint32_t>& items) {
  ras::ErrcodeId max_code = -1;
  for (const Rule& r : rules) max_code = std::max(max_code, by_target ? r.target : r.precursor);
  offsets.assign(static_cast<std::size_t>(max_code) + 2, 0);
  for (const Rule& r : rules) ++offsets[static_cast<std::size_t>(by_target ? r.target : r.precursor) + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  items.resize(rules.size());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::uint32_t i = 0; i < rules.size(); ++i) {
    const auto code = static_cast<std::size_t>(by_target ? rules[i].target : rules[i].precursor);
    items[cursor[code]++] = i;
  }
}

}  // namespace

Predictor::Predictor(const RuleTable& table, const machine::MachineModel& machine,
                     obs::Collector* collector)
    : table_(&table), machine_(&machine), obs_(collector), active_(table.rules.size()) {
  if (!table.rules.empty()) {
    build_csr(table.rules, /*by_target=*/false, by_precursor_offset_, by_precursor_rule_);
    build_csr(table.rules, /*by_target=*/true, by_target_offset_, by_target_rule_);
  }
}

bool Predictor::zone_covers(std::int32_t zone, std::uint32_t loc_key) const {
  if (zone < 0) return true;
  const machine::LocCodec& codec = machine_->codec();
  if (codec.is_rack(loc_key)) {
    const machine::MidplaneId first = codec.rack_first_midplane(loc_key);
    return zone >= first && zone < first + codec.midplanes_per_rack;
  }
  return codec.midplane_of(loc_key) == zone;
}

void Predictor::fire(std::uint32_t rule_index, std::int32_t zone, TimePoint t) {
  auto& acts = active_[rule_index];
  std::erase_if(acts, [&](const Active& a) { return predictions_[a.pred].expires < t; });
  for (const Active& a : acts) {
    if (a.zone == zone) {
      ++suppressed_;
      CORAL_OBS_COUNT(obs_, "predict.suppressed", 1);
      return;
    }
  }
  Prediction p;
  p.rule = rule_index;
  p.issued = t;
  p.expires = t + table_->rules[rule_index].window;
  p.midplane = zone;
  acts.push_back(Active{zone, static_cast<std::uint32_t>(predictions_.size()), false});
  predictions_.push_back(p);
  ++issued_;
  CORAL_OBS_COUNT(obs_, "predict.issued", 1);
}

void Predictor::on_record(const ras::RasEvent& event) {
  if (table_->rules.empty()) return;
  const auto code = static_cast<std::size_t>(event.errcode);
  const TimePoint t = event.event_time;
  const std::uint32_t key = event.location.packed();

  // 1. Score hits: the record fulfils every still-active prediction whose
  //    rule targets this code and whose zone covers the location. Processed
  //    before firing, so a self-rule's own trigger never scores its alarm.
  if (code + 1 < by_target_offset_.size()) {
    for (std::uint32_t k = by_target_offset_[code]; k < by_target_offset_[code + 1]; ++k) {
      auto& acts = active_[by_target_rule_[k]];
      std::erase_if(acts, [&](const Active& a) { return predictions_[a.pred].expires < t; });
      for (Active& a : acts) {
        const Prediction& p = predictions_[a.pred];
        if (!a.hit && p.issued < t && zone_covers(a.zone, key)) {
          a.hit = true;
          ++hits_;
          CORAL_OBS_COUNT(obs_, "predict.hits", 1);
          CORAL_OBS_VALUE(obs_, "predict.lead_minutes",
                          static_cast<double>(t - p.issued) / static_cast<double>(kUsecPerMin));
        }
      }
    }
  }

  // 2. Fire rules with this code as precursor.
  if (code + 1 < by_precursor_offset_.size()) {
    for (std::uint32_t k = by_precursor_offset_[code]; k < by_precursor_offset_[code + 1]; ++k) {
      const std::uint32_t r = by_precursor_rule_[k];
      if (table_->rules[r].scope == RuleScope::Machine) {
        fire(r, -1, t);
        continue;
      }
      const machine::LocCodec& codec = machine_->codec();
      if (codec.is_rack(key)) {
        const machine::MidplaneId first = codec.rack_first_midplane(key);
        for (int m = 0; m < codec.midplanes_per_rack; ++m) fire(r, first + m, t);
      } else {
        fire(r, codec.midplane_of(key), t);
      }
    }
  }
}

std::vector<Prediction> replay(const RuleTable& table, const ras::RasLog& log,
                               obs::Collector* collector) {
  Predictor predictor(table, log.machine(), collector);
  for (const ras::RasEvent& event : log.events()) predictor.on_record(event);
  return predictor.predictions();
}

PredictionAdvisor::PredictionAdvisor(const RuleTable& table,
                                     const machine::MachineModel& machine,
                                     obs::Collector* collector, std::size_t max_drained)
    : predictor_(table, machine, collector),
      obs_(collector),
      max_drained_(max_drained != 0
                       ? max_drained
                       : std::max<std::size_t>(
                             1, static_cast<std::size_t>(machine.midplane_count()) / 8)),
      avoid_until_(static_cast<std::size_t>(machine.midplane_count())) {}

void PredictionAdvisor::on_record(const ras::RasEvent& event) {
  predictor_.on_record(event);
  const auto& preds = predictor_.predictions();
  for (; consumed_ < preds.size(); ++consumed_) {
    const Prediction& p = preds[consumed_];
    if (p.midplane < 0 || static_cast<std::size_t>(p.midplane) >= avoid_until_.size()) {
      continue;
    }
    auto& until = avoid_until_[static_cast<std::size_t>(p.midplane)];
    if (until >= p.issued) {  // already draining: extend freely
      until = std::max(until, p.expires);
      continue;
    }
    std::size_t draining = 0;
    for (const TimePoint u : avoid_until_) draining += u >= p.issued ? 1 : 0;
    if (draining >= max_drained_) {
      CORAL_OBS_COUNT(obs_, "predict.advice_capped", 1);
      continue;
    }
    until = std::max(until, p.expires);
  }
}

bool PredictionAdvisor::avoid(machine::MidplaneId midplane, TimePoint now) const {
  const auto m = static_cast<std::size_t>(midplane);
  return m < avoid_until_.size() && now <= avoid_until_[m];
}

}  // namespace coral::predict
