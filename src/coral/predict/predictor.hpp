#pragma once

#include <cstdint>
#include <vector>

#include "coral/machine/model.hpp"
#include "coral/obs/obs.hpp"
#include "coral/predict/rules.hpp"
#include "coral/ras/log.hpp"
#include "coral/sched/policy.hpp"
#include "coral/stream/stage.hpp"

namespace coral::predict {

/// One issued alarm: rule `rule` fired at `issued`, predicting its target
/// within `(issued, expires]` on `midplane` (-1 = machine-wide). The online
/// and offline paths must produce byte-identical sequences of these, so the
/// struct carries only issue-time facts (hit bookkeeping lives in the
/// predictor's private state).
struct Prediction {
  std::uint32_t rule = 0;  ///< index into the RuleTable
  TimePoint issued;
  TimePoint expires;
  std::int32_t midplane = -1;  ///< machine::MidplaneId; -1 = machine-wide

  friend bool operator==(const Prediction& a, const Prediction& b) = default;
};

/// The online prediction state machine: feed RAS records in time order and
/// it issues predictions per the rule table. Pure and deterministic — the
/// output depends only on the table and the record sequence, never on
/// chunking, threading or wall clock — which is what lets the streaming
/// session be differential-tested byte-identical against offline replay.
///
/// Per record with code c:
///  1. every still-active prediction whose rule targets c and whose zone
///     covers the record is scored as a hit (once per prediction; lead time
///     lands in the `predict.lead_minutes` histogram);
///  2. every rule with precursor c fires: per (rule, zone) at most one
///     prediction is active at a time — re-firing inside the window is
///     counted as `predict.suppressed`, not re-issued.
///
/// Rack-level records fan out to every midplane of their rack, exactly as
/// the filter/matching layers treat rack locations.
class Predictor {
 public:
  /// `table` and `machine` must outlive the predictor; `collector` may be
  /// null (no metrics).
  Predictor(const RuleTable& table, const machine::MachineModel& machine,
            obs::Collector* collector = nullptr);

  void on_record(const ras::RasEvent& event);

  /// Every prediction issued so far, in issue order.
  const std::vector<Prediction>& predictions() const { return predictions_; }

  std::uint64_t issued() const { return issued_; }
  std::uint64_t suppressed() const { return suppressed_; }
  std::uint64_t hits() const { return hits_; }

  const RuleTable& table() const { return *table_; }
  const machine::MachineModel& machine() const { return *machine_; }

 private:
  struct Active {
    std::int32_t zone = -1;       ///< midplane id, -1 = machine-wide
    std::uint32_t pred = 0;       ///< index into predictions_
    bool hit = false;
  };

  bool zone_covers(std::int32_t zone, std::uint32_t loc_key) const;
  void fire(std::uint32_t rule_index, std::int32_t zone, TimePoint t);

  const RuleTable* table_;
  const machine::MachineModel* machine_;
  obs::Collector* obs_;

  /// CSR: rules bucketed by precursor / target code.
  std::vector<std::uint32_t> by_precursor_offset_, by_precursor_rule_;
  std::vector<std::uint32_t> by_target_offset_, by_target_rule_;

  /// Per rule, the currently active (unexpired) predictions by zone.
  std::vector<std::vector<Active>> active_;

  std::vector<Prediction> predictions_;
  std::uint64_t issued_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t hits_ = 0;
};

/// Offline replay: run the predictor over a finalized log and return the
/// predictions. Record order is log order (== time order), so this is the
/// reference the online session path is pinned against.
std::vector<Prediction> replay(const RuleTable& table, const ras::RasLog& log,
                               obs::Collector* collector = nullptr);

/// stream::Stage adapter, so a predictor can ride any StageDriver replay
/// alongside the filter stages.
class PredictorStage : public stream::Stage {
 public:
  PredictorStage(const RuleTable& table, const machine::MachineModel& machine,
                 obs::Collector* collector = nullptr)
      : predictor_(table, machine, collector) {}

  void on_ras(TimePoint /*t*/, const ras::RasEvent& event, std::size_t /*index*/) override {
    predictor_.on_record(event);
  }

  Predictor& predictor() { return predictor_; }
  const Predictor& predictor() const { return predictor_; }

 private:
  Predictor predictor_;
};

/// Closes the loop into the scheduler: feeds every RAS record through a
/// predictor and advises the placement policy to avoid midplanes with an
/// active midplane-scoped prediction (machine-wide alarms never blacklist —
/// draining the whole machine is not a placement decision). Attach via
/// synth::ScenarioConfig::advisor to measure saved node-hours against the
/// no-prediction baseline.
class PredictionAdvisor : public sched::PlacementAdvisor {
 public:
  /// `max_drained` caps how many midplanes may be under avoidance at once —
  /// a control system never drains a large slice of the machine on alarms
  /// (during a machine-wide degraded window every midplane alarms, and
  /// honoring all of them would herd every job onto a handful of midplanes
  /// exactly when fault pressure peaks). 0 = auto: an eighth of the
  /// machine. Alarms past the cap are dropped, not queued.
  PredictionAdvisor(const RuleTable& table, const machine::MachineModel& machine,
                    obs::Collector* collector = nullptr, std::size_t max_drained = 0);

  void on_record(const ras::RasEvent& event) override;
  bool avoid(machine::MidplaneId midplane, TimePoint now) const override;

  const Predictor& predictor() const { return predictor_; }

 private:
  Predictor predictor_;
  obs::Collector* obs_;
  std::size_t max_drained_;
  std::size_t consumed_ = 0;  ///< predictions already folded into avoid_until_
  std::vector<TimePoint> avoid_until_;
};

}  // namespace coral::predict
