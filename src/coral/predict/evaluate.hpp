#pragma once

#include "coral/predict/miner.hpp"
#include "coral/predict/predictor.hpp"
#include "coral/synth/packs.hpp"
#include "coral/synth/scenario.hpp"

namespace coral::predict {

/// Ground-truth scoring of a prediction run. Both rates are computed against
/// the injector's truth, not against the log: a prediction is *true* when a
/// ground-truth system-failure manifestation lands inside its window and
/// zone, and the recall denominator is the set of truth interruptions whose
/// underlying fault the injector labelled SystemFailure (application errors
/// are not the predictor's job — Observation 1).
struct Evaluation {
  std::size_t predictions = 0;       ///< alarms issued
  std::size_t true_predictions = 0;  ///< alarms a manifestation fulfilled
  std::size_t events_total = 0;      ///< truth system-failure interruptions
  std::size_t events_caught = 0;     ///< ... covered by an earlier alarm
  double mean_lead_minutes = 0;      ///< alarm -> interruption, caught only

  double precision() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(true_predictions) /
                                  static_cast<double>(predictions);
  }
  double recall() const {
    return events_total == 0 ? 0.0
                             : static_cast<double>(events_caught) /
                                   static_cast<double>(events_total);
  }

  friend bool operator==(const Evaluation& a, const Evaluation& b) = default;
};

/// Join `predictions` against injector ground truth. Zone semantics match
/// the predictor's: machine-wide alarms cover everything; midplane alarms
/// cover faults whose location touches the midplane (rack-level locations
/// touch the whole rack). Deterministic: a pure function of its inputs.
Evaluation evaluate(const std::vector<Prediction>& predictions, const RuleTable& table,
                    const synth::GroundTruth& truth,
                    const machine::MachineModel& machine);

/// Outcome of the fault-aware-placement experiment: the same scenario run
/// twice, without and with a PredictionAdvisor steering placements away
/// from predicted-bad midplanes.
struct PolicyComparison {
  RuleTable rules;  ///< mined on the baseline run
  Evaluation eval;  ///< replay of the rules over the baseline log
  /// Node-hours of machine time lost to system-failure interruptions: the
  /// interrupted job's elapsed runtime (its work is gone — no checkpoints,
  /// §VII) plus the post-failure partition hold (cleanup/reboot before
  /// anything can boot there, ResubmitConfig::failure_hold), both times the
  /// partition's node count.
  double baseline_lost_node_hours = 0;
  double advised_lost_node_hours = 0;
  /// Truth system-failure interruption counts for the same two runs — the
  /// machine-health view of the same comparison (each interruption is a
  /// killed job and a requeue, whatever its node-hour price).
  std::size_t baseline_interruptions = 0;
  std::size_t advised_interruptions = 0;

  double saved_node_hours() const {
    return baseline_lost_node_hours - advised_lost_node_hours;
  }
};

/// Run the full mine -> predict -> act loop on one scenario: generate the
/// baseline, co-analyze it, mine rules, score them against ground truth,
/// then re-run the same scenario with a PredictionAdvisor attached and
/// compare lost node-hours. The advised run diverges from the baseline by
/// construction (placements change), which is the point.
PolicyComparison compare_policies(const synth::ScenarioConfig& config,
                                  const MinerConfig& miner = {}, const Context& ctx = {});

/// The seeded injector scenario the CI prediction-eval stage gates on: the
/// correlated_cascade pack on the reference BG/P, tilted toward persistent
/// faults (the predictable regime) and a small-uniform-job workload so the
/// policy comparison measures avoidance rather than placement roulette.
synth::ScenarioConfig eval_scenario(std::uint64_t seed = 42, int days = 21);

}  // namespace coral::predict
