#include "coral/common/binary_frame.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "coral/common/error.hpp"

namespace coral::bin {

namespace {

// Slicing-by-16 tables: entries[0] is the classic byte-at-a-time table, and
// entries[k][b] is the CRC of byte b followed by k zero bytes, so one round
// folds sixteen input bytes with sixteen independent lookups (twice the
// ILP of slicing-by-8 — the round's lookups have no chain through `c`
// except at the fold, and checksumming is a fixed tax on every read).
struct Crc32Table {
  std::uint32_t entries[16][256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[0][i] = c;
    }
    for (int k = 1; k < 16; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = entries[k - 1][i];
        entries[k][i] = entries[0][prev & 0xFFu] ^ (prev >> 8);
      }
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

constexpr std::size_t kHeaderBytes = kBlockHeaderBytes;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = crc_table().entries;
  std::uint32_t c = 0xFFFFFFFFu;
  // Same little-endian-host assumption the frame layout already makes.
  while (size >= 16) {
    std::uint32_t w0;
    std::uint32_t w1;
    std::uint32_t w2;
    std::uint32_t w3;
    std::memcpy(&w0, p, sizeof w0);
    std::memcpy(&w1, p + 4, sizeof w1);
    std::memcpy(&w2, p + 8, sizeof w2);
    std::memcpy(&w3, p + 12, sizeof w3);
    w0 ^= c;
    c = t[15][w0 & 0xFFu] ^ t[14][(w0 >> 8) & 0xFFu] ^ t[13][(w0 >> 16) & 0xFFu] ^
        t[12][w0 >> 24] ^ t[11][w1 & 0xFFu] ^ t[10][(w1 >> 8) & 0xFFu] ^
        t[9][(w1 >> 16) & 0xFFu] ^ t[8][w1 >> 24] ^ t[7][w2 & 0xFFu] ^
        t[6][(w2 >> 8) & 0xFFu] ^ t[5][(w2 >> 16) & 0xFFu] ^ t[4][w2 >> 24] ^
        t[3][w3 & 0xFFu] ^ t[2][(w3 >> 8) & 0xFFu] ^ t[1][(w3 >> 16) & 0xFFu] ^
        t[0][w3 >> 24];
    p += 16;
    size -= 16;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool index_frames(std::string_view region, std::vector<FrameRef>& out) {
  std::size_t pos = 0;
  while (pos < region.size()) {
    if (region.size() - pos < kHeaderBytes) return false;  // truncated header
    if (std::memcmp(region.data() + pos, kBlockMagic, sizeof kBlockMagic) != 0) return false;
    std::uint32_t size = 0;
    std::uint32_t crc = 0;
    std::memcpy(&size, region.data() + pos + sizeof kBlockMagic, sizeof size);
    std::memcpy(&crc, region.data() + pos + sizeof kBlockMagic + sizeof size, sizeof crc);
    if (size == 0 || size > kMaxBlockPayload) return false;
    if (region.size() - pos - kHeaderBytes < size) return false;  // truncated payload
    out.push_back({pos, size, crc});
    pos += kHeaderBytes + size;
  }
  return true;
}

void append_frame(std::string& out, std::string_view payload) {
  if (payload.empty()) return;
  out.append(kBlockMagic, sizeof kBlockMagic);
  const auto size = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&size), sizeof size);
  out.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  out.append(payload.data(), payload.size());
}

void BlockWriter::append(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void BlockWriter::put_string(const std::string& s) {
  put(static_cast<std::uint16_t>(s.size()));
  append(s.data(), s.size());
}

void BlockWriter::flush() {
  if (buf_.empty()) return;
  out_.write(kBlockMagic, sizeof kBlockMagic);
  const auto size = static_cast<std::uint32_t>(buf_.size());
  const std::uint32_t crc = crc32(buf_.data(), buf_.size());
  out_.write(reinterpret_cast<const char*>(&size), sizeof size);
  out_.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void BlockReader::fill(std::size_t want) {
  constexpr std::size_t kChunk = 64 * 1024;
  while (pending_.size() < want && in_.good()) {
    const std::size_t old = pending_.size();
    const std::size_t grow = std::max(want - old, kChunk);
    pending_.resize(old + grow);
    in_.read(pending_.data() + old, static_cast<std::streamsize>(grow));
    pending_.resize(old + static_cast<std::size_t>(in_.gcount()));
  }
}

void BlockReader::drop(std::size_t n) {
  pending_.erase(0, n);
  pending_base_ += n;
}

void BlockReader::note_damage(std::uint64_t offset, const char* detail) {
  if (mode_ == ParseMode::Strict) {
    throw ParseError(std::string(what_) + ": " + detail + " at byte offset " +
                     std::to_string(offset));
  }
  if (report_ != nullptr) {
    report_->add_malformed(IngestReason::BinaryFrame, offset, "", detail);
  }
}

bool BlockReader::next(std::string& payload) {
  // One damaged stretch — however many scan steps it takes to resynchronize —
  // is reported as a single dropped frame.
  bool damage_noted = false;
  const auto damaged = [&](std::uint64_t offset, const char* detail) {
    if (!damage_noted) note_damage(offset, detail);
    damage_noted = true;
  };
  // Skip ahead to the next "CBLK" marker at index >= 1, or (almost) all of
  // the buffer when none is present, keeping a partial-marker tail.
  const auto resync = [&] {
    const std::size_t at = pending_.find(kBlockMagic, 1, sizeof kBlockMagic);
    if (at != std::string::npos) {
      drop(at);
    } else {
      const std::size_t keep =
          pending_.size() < sizeof kBlockMagic - 1 ? pending_.size() : sizeof kBlockMagic - 1;
      drop(pending_.size() - keep);
      fill(kHeaderBytes);
      if (pending_.size() < kHeaderBytes) drop(pending_.size());  // trailing garbage
    }
  };

  for (;;) {
    fill(kHeaderBytes);
    if (pending_.empty()) return false;  // clean end of input
    const std::uint64_t start = pending_base_;
    if (pending_.size() < kHeaderBytes) {
      damaged(start, "truncated block header");
      drop(pending_.size());
      return false;
    }
    if (std::memcmp(pending_.data(), kBlockMagic, sizeof kBlockMagic) != 0) {
      damaged(start, "bad block magic");
      resync();
      continue;
    }
    std::uint32_t size = 0;
    std::uint32_t crc = 0;
    std::memcpy(&size, pending_.data() + sizeof kBlockMagic, sizeof size);
    std::memcpy(&crc, pending_.data() + sizeof kBlockMagic + sizeof size, sizeof crc);
    if (size == 0 || size > kMaxBlockPayload) {
      damaged(start, "implausible block size");
      resync();
      continue;
    }
    fill(kHeaderBytes + size);
    if (pending_.size() < kHeaderBytes + size) {
      damaged(start, "truncated block payload");
      // The truncated tail cannot hold a complete block (it is shorter than
      // this one), but may still contain a marker for a shorter final block.
      resync();
      if (pending_.empty()) return false;
      continue;
    }
    if (crc32(pending_.data() + kHeaderBytes, size) != crc) {
      damaged(start, "block CRC mismatch");
      resync();
      continue;
    }
    payload.assign(pending_, kHeaderBytes, size);
    block_offset_ = start;
    drop(kHeaderBytes + size);
    return true;
  }
}

void FrameAssembler::push(std::string_view bytes) {
  pending_.append(bytes.data(), bytes.size());
}

void FrameAssembler::drop(std::size_t n) {
  pending_.erase(0, n);
  pending_base_ += n;
}

void FrameAssembler::note_damage(std::uint64_t offset, const char* detail) {
  if (in_damage_) return;  // one sample per damaged stretch
  in_damage_ = true;
  if (mode_ == ParseMode::Strict) {
    throw ParseError(std::string(what_) + ": " + detail + " at byte offset " +
                     std::to_string(offset));
  }
  if (report_ != nullptr) {
    report_->add_malformed(IngestReason::BinaryFrame, offset, "", detail);
  }
}

bool FrameAssembler::resync() {
  const std::size_t at = pending_.find(kBlockMagic, 1, sizeof kBlockMagic);
  if (at != std::string::npos) {
    drop(at);
    return true;
  }
  // No marker in the buffer: keep a partial-marker tail in case the "CBLK"
  // straddles the next push; at end-of-stream the tail is trailing garbage
  // (already covered by the open damage stretch).
  const std::size_t keep =
      pending_.size() < sizeof kBlockMagic - 1 ? pending_.size() : sizeof kBlockMagic - 1;
  drop(pending_.size() - keep);
  if (eos_) drop(pending_.size());
  return false;
}

bool FrameAssembler::next(std::string& payload) {
  for (;;) {
    if (pending_.empty()) return false;  // clean: everything consumed
    const std::uint64_t start = pending_base_;
    if (pending_.size() < kHeaderBytes) {
      if (!eos_) return false;  // header may complete on the next push
      note_damage(start, "truncated block header");
      drop(pending_.size());
      return false;
    }
    if (std::memcmp(pending_.data(), kBlockMagic, sizeof kBlockMagic) != 0) {
      note_damage(start, "bad block magic");
      if (!resync()) return false;
      continue;
    }
    std::uint32_t size = 0;
    std::uint32_t crc = 0;
    std::memcpy(&size, pending_.data() + sizeof kBlockMagic, sizeof size);
    std::memcpy(&crc, pending_.data() + sizeof kBlockMagic + sizeof size, sizeof crc);
    if (size == 0 || size > kMaxBlockPayload) {
      note_damage(start, "implausible block size");
      if (!resync()) return false;
      continue;
    }
    if (pending_.size() < kHeaderBytes + size) {
      if (!eos_) return false;  // payload still in flight
      note_damage(start, "truncated block payload");
      if (!resync()) return false;
      continue;
    }
    if (crc32(pending_.data() + kHeaderBytes, size) != crc) {
      note_damage(start, "block CRC mismatch");
      if (!resync()) return false;
      continue;
    }
    payload.assign(pending_, kHeaderBytes, size);
    block_offset_ = start;
    drop(kHeaderBytes + size);
    in_damage_ = false;
    return true;
  }
}

void PayloadCursor::read(void* dst, std::size_t n) {
  if (n > remaining()) {
    throw ParseError(std::string(what_) + ": truncated field at byte offset " +
                     std::to_string(offset()));
  }
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
}

std::string_view PayloadCursor::take(std::size_t n) {
  if (n > remaining()) {
    throw ParseError(std::string(what_) + ": truncated field at byte offset " +
                     std::to_string(offset()));
  }
  const std::string_view v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

std::string PayloadCursor::get_string(std::size_t n) {
  if (n > remaining()) {
    throw ParseError(std::string(what_) + ": truncated string at byte offset " +
                     std::to_string(offset()));
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

}  // namespace coral::bin
