#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coral::par {

/// A fixed-size worker pool. Tasks are arbitrary callables; `wait_idle`
/// blocks until every submitted task has completed. Exceptions thrown by
/// tasks are captured and rethrown (first one) from wait_idle().
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks finished; rethrows the first captured
  /// task exception, if any.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Split [0, n) into roughly even chunks and run `body(begin, end)` on each,
/// using `pool` if provided and worthwhile, else serially. `body` must be
/// safe to call concurrently on disjoint ranges.
void parallel_for_chunks(std::size_t n, std::size_t min_chunk,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ThreadPool* pool = nullptr);

/// Global default pool (lazily constructed, sized to the hardware).
ThreadPool& default_pool();

}  // namespace coral::par
