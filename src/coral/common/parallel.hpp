#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "coral/obs/obs.hpp"

namespace coral::par {

/// A fixed-size worker pool. Tasks are arbitrary callables; `wait_idle`
/// blocks until every submitted task has completed. Exceptions thrown by
/// tasks are captured and rethrown (first one) from wait_idle().
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks finished; rethrows the first captured
  /// task exception, if any.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// Attach an observability collector: every subsequent submit/execution
  /// reports pool.queue_depth (tasks waiting at enqueue), pool.task_wait_ms
  /// (enqueue -> dequeue) and pool.task_run_ms histograms plus a
  /// pool.tasks counter. Attach while the pool is idle (it is not
  /// synchronized against concurrent submits); nullptr detaches, and a
  /// detached pool never reads a clock on the task path.
  void set_obs(obs::Collector* collector);

 private:
  /// A queued callable plus its enqueue time (stamped only when a collector
  /// is attached — the clock read is part of the observability budget).
  struct Task {
    std::function<void()> fn;
    obs::Clock::time_point enqueued{};
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;

  // Observability handles, resolved once at attach time so the task path
  // never takes the registry lock.
  obs::Collector* obs_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  obs::Histogram* task_wait_ms_ = nullptr;
  obs::Histogram* task_run_ms_ = nullptr;
  obs::Counter* tasks_run_ = nullptr;
};

/// Split [0, n) into roughly even chunks and run `body(begin, end)` on each,
/// using `pool` if provided and worthwhile, else serially. `body` must be
/// safe to call concurrently on disjoint ranges.
///
/// Header-only: chunks are pulled off a shared atomic cursor by at most
/// `thread_count()` submitted tasks, each capturing a single pointer — no
/// heap-allocated closure per chunk (the lambda fits std::function's
/// small-buffer storage).
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t min_chunk, Body&& body,
                         ThreadPool* pool = nullptr) {
  if (n == 0) return;
  const std::size_t threads = pool ? pool->thread_count() : 1;
  if (threads <= 1 || n <= min_chunk) {
    body(std::size_t{0}, n);
    return;
  }
  const std::size_t chunks = std::min(threads * 4, std::max<std::size_t>(1, n / min_chunk));
  const std::size_t step = (n + chunks - 1) / chunks;
  struct Cursor {
    std::remove_reference_t<Body>* body;
    std::size_t n;
    std::size_t step;
    std::atomic<std::size_t> next{0};
  };
  Cursor cursor{std::addressof(body), n, step, {}};
  const std::size_t tasks = std::min(threads, chunks);
  for (std::size_t t = 0; t < tasks; ++t) {
    pool->submit([c = &cursor] {
      for (;;) {
        const std::size_t begin = c->next.fetch_add(c->step, std::memory_order_relaxed);
        if (begin >= c->n) return;
        (*c->body)(begin, std::min(c->n, begin + c->step));
      }
    });
  }
  pool->wait_idle();
}

/// Type-erased overload, kept for call sites that already hold a
/// std::function (non-template translation units).
void parallel_for_chunks(std::size_t n, std::size_t min_chunk,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ThreadPool* pool = nullptr);

/// Worker count requested via the CORAL_THREADS environment variable; 0 when
/// unset or not a positive integer (0 = let ThreadPool pick the hardware
/// concurrency).
std::size_t configured_thread_count();

/// Global default pool (lazily constructed; sized from CORAL_THREADS when
/// set, else to the hardware).
ThreadPool& default_pool();

}  // namespace coral::par
