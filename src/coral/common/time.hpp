#pragma once

#include <cstdint>
#include <string>

namespace coral {

/// Microseconds — the native resolution of BG/P RAS timestamps
/// (e.g. "2009-01-05-15.08.12.285324").
using Usec = std::int64_t;

inline constexpr Usec kUsecPerSec = 1'000'000;
inline constexpr Usec kUsecPerMin = 60 * kUsecPerSec;
inline constexpr Usec kUsecPerHour = 60 * kUsecPerMin;
inline constexpr Usec kUsecPerDay = 24 * kUsecPerHour;

/// A point in time, microseconds since the Unix epoch (UTC).
///
/// A thin strong type over int64 so that times and durations do not mix
/// silently. Durations are plain Usec values.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Usec usec_since_epoch) : usec_(usec_since_epoch) {}

  /// Construct from fractional Unix seconds (the Cobalt job-log encoding,
  /// e.g. "1209618043.1").
  static TimePoint from_unix_seconds(double sec);

  /// Construct from calendar fields (UTC). Throws InvalidArgument on
  /// out-of-range fields, including impossible dates (2026-02-31) that a
  /// plain day <= 31 check would silently wrap into the next month.
  static TimePoint from_calendar(int year, int month, int day, int hour = 0,
                                 int minute = 0, int second = 0, int usec = 0);

  /// Parse the BG/P RAS timestamp format "YYYY-MM-DD-HH.MM.SS.ffffff".
  /// The fractional part may have 1..6 digits or be absent.
  /// Throws ParseError on malformed input or an impossible calendar date
  /// (month-length and leap-year rules are enforced, not just day <= 31).
  static TimePoint parse_ras(const std::string& text);

  constexpr Usec usec() const { return usec_; }
  constexpr double unix_seconds() const {
    return static_cast<double>(usec_) / static_cast<double>(kUsecPerSec);
  }

  /// Format as the BG/P RAS timestamp "YYYY-MM-DD-HH.MM.SS.ffffff" (UTC).
  std::string to_ras_string() const;

  /// Format as "YYYY-MM-DD HH:MM:SS" (UTC), for human-readable reports.
  std::string to_display_string() const;

  /// Days elapsed since `origin` (floor), for per-day bucketing.
  constexpr std::int64_t days_since(TimePoint origin) const {
    Usec d = usec_ - origin.usec_;
    if (d < 0) d -= kUsecPerDay - 1;  // floor toward -inf
    return d / kUsecPerDay;
  }

  friend constexpr bool operator==(TimePoint a, TimePoint b) = default;
  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

  friend constexpr TimePoint operator+(TimePoint t, Usec d) { return TimePoint(t.usec_ + d); }
  friend constexpr TimePoint operator-(TimePoint t, Usec d) { return TimePoint(t.usec_ - d); }
  friend constexpr Usec operator-(TimePoint a, TimePoint b) { return a.usec_ - b.usec_; }

 private:
  Usec usec_ = 0;
};

/// Calendar date/time fields (UTC); conversion helpers for formatting.
struct CalendarTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;
  int usec = 0;
};

/// Decompose a TimePoint into calendar fields (UTC, proleptic Gregorian).
CalendarTime to_calendar(TimePoint t);

/// Days from the civil (Gregorian) date to the epoch 1970-01-01
/// (Howard Hinnant's algorithm; exact over the int range we use).
std::int64_t days_from_civil(int year, int month, int day);

}  // namespace coral
