#include "coral/common/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "coral/common/error.hpp"

namespace coral {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::int64_t parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) throw ParseError("empty integer");
  bool neg = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    neg = text[0] == '-';
    i = 1;
    if (text.size() == 1) throw ParseError("sign-only integer");
  }
  std::int64_t v = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') throw ParseError("non-digit in integer: '" + std::string(text) + "'");
    v = v * 10 + (c - '0');
  }
  return neg ? -v : v;
}

double parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) throw ParseError("empty number");
  const std::string owned(text);
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    throw ParseError("malformed number: '" + owned + "'");
  }
  return v;
}

}  // namespace coral
