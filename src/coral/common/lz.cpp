#include "coral/common/lz.hpp"

#include <cstring>

namespace coral::bin::lz {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

std::uint32_t hash4(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(std::string& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xFF));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

void put_group(std::string& out, std::string_view src, std::size_t lit_begin,
               std::size_t lit_end, std::size_t offset, std::size_t match_len) {
  const std::size_t lit_len = lit_end - lit_begin;
  const std::uint8_t lit_nib = lit_len < 15 ? static_cast<std::uint8_t>(lit_len) : 15;
  std::uint8_t match_nib = 0;
  if (match_len != 0) {
    const std::size_t m = match_len - kMinMatch;
    match_nib = m < 15 ? static_cast<std::uint8_t>(m) : 15;
  }
  out.push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) put_length(out, lit_len - 15);
  out.append(src.data() + lit_begin, lit_len);
  if (match_len == 0) return;  // final literal-only group
  const auto off = static_cast<std::uint16_t>(offset);
  out.push_back(static_cast<char>(off & 0xFF));
  out.push_back(static_cast<char>(off >> 8));
  if (match_nib == 15) put_length(out, match_len - kMinMatch - 15);
}

}  // namespace

std::size_t compress(std::string_view src, std::string& out) {
  const std::size_t start = out.size();
  // Hash slots hold position + 1; 0 = empty. Stack storage keeps the
  // per-block compressor allocation-free (the v3 writer calls it once per
  // 64-record block).
  std::uint32_t table[1u << kHashBits] = {};

  std::size_t pos = 0;
  std::size_t lit_begin = 0;
  // Stop probing 4 bytes short so hash4/match reads stay in bounds.
  while (src.size() - pos >= kMinMatch) {
    const std::uint32_t h = hash4(src.data() + pos);
    const std::uint32_t prev = table[h];
    table[h] = static_cast<std::uint32_t>(pos + 1);
    if (prev != 0) {
      const std::size_t at = prev - 1;
      if (pos - at <= kMaxOffset &&
          std::memcmp(src.data() + at, src.data() + pos, kMinMatch) == 0) {
        std::size_t len = kMinMatch;
        while (pos + len < src.size() && src[at + len] == src[pos + len]) ++len;
        put_group(out, src, lit_begin, pos, pos - at, len);
        pos += len;
        lit_begin = pos;
        continue;
      }
    }
    ++pos;
  }
  // A stream may legitimately end on a match; emit a final literal-only
  // group only when there is a tail to carry (the decoder stops at the
  // declared output size, not at a terminator).
  if (lit_begin < src.size()) put_group(out, src, lit_begin, src.size(), 0, 0);
  return out.size() - start;
}

bool decompress(std::string_view src, char* dst, std::size_t dst_size) {
  std::size_t ip = 0;
  std::size_t op = 0;
  const auto read_length = [&](std::size_t base, std::size_t& len) {
    len = base;
    if (base != 15) return true;
    for (;;) {
      if (ip >= src.size()) return false;
      const auto b = static_cast<std::uint8_t>(src[ip++]);
      len += b;
      if (b != 255) return true;
      // A damaged stream of 0xFF bytes must not spin past any plausible
      // length; the dst_size checks below catch the overflow either way.
      if (len > dst_size + 255) return false;
    }
  };

  while (op < dst_size) {
    if (ip >= src.size()) return false;
    const auto token = static_cast<std::uint8_t>(src[ip++]);
    std::size_t lit_len = 0;
    if (!read_length(token >> 4, lit_len)) return false;
    if (lit_len > dst_size - op || lit_len > src.size() - ip) return false;
    std::memcpy(dst + op, src.data() + ip, lit_len);
    ip += lit_len;
    op += lit_len;
    if (op == dst_size) break;  // final literal-only group

    if (src.size() - ip < 2) return false;
    const std::size_t offset = static_cast<std::uint8_t>(src[ip]) |
                               (static_cast<std::size_t>(static_cast<std::uint8_t>(src[ip + 1])) << 8);
    ip += 2;
    if (offset == 0 || offset > op) return false;
    std::size_t match_len = 0;
    if (!read_length(token & 0xF, match_len)) return false;
    match_len += kMinMatch;
    if (match_len > dst_size - op) return false;
    const char* from = dst + op - offset;
    if (offset >= match_len) {
      std::memcpy(dst + op, from, match_len);
    } else {
      for (std::size_t i = 0; i < match_len; ++i) dst[op + i] = from[i];
    }
    op += match_len;
  }
  return op == dst_size && ip == src.size();
}

}  // namespace coral::bin::lz
