#include "coral/common/time.hpp"

#include <cmath>
#include <cstdio>

#include "coral/common/error.hpp"

namespace coral {

namespace {

// Inverse of days_from_civil (Howard Hinnant's civil_from_days).
void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const std::int64_t doe = z - era * 146097;                                 // [0,146096]
  const std::int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0,399]
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0,365]
  const std::int64_t mp = (5 * doy + 2) / 153;                               // [0,11]
  const std::int64_t d = doy - (153 * mp + 2) / 5 + 1;                       // [1,31]
  const std::int64_t m = mp < 10 ? mp + 3 : mp - 9;                          // [1,12]
  year = static_cast<int>(m <= 2 ? y + 1 : y);
  month = static_cast<int>(m);
  day = static_cast<int>(d);
}

// A (year, month, day) triple is a real calendar date iff it survives the
// days_from_civil -> civil_from_days round trip: days_from_civil silently
// wraps impossible dates (2026-02-31 becomes 2026-03-03), so a changed
// triple is exactly the signature of an impossible date.
bool valid_civil_date(int year, int month, int day) {
  int ry = 0, rm = 0, rd = 0;
  civil_from_days(days_from_civil(year, month, day), ry, rm, rd);
  return ry == year && rm == month && rd == day;
}

int parse_digits(const std::string& s, size_t pos, size_t count) {
  if (pos + count > s.size()) throw ParseError("timestamp too short: '" + s + "'");
  int v = 0;
  for (size_t i = pos; i < pos + count; ++i) {
    char c = s[i];
    if (c < '0' || c > '9') throw ParseError("non-digit in timestamp: '" + s + "'");
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

std::int64_t days_from_civil(int year, int month, int day) {
  const std::int64_t y = year - (month <= 2);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const std::int64_t yoe = y - era * 400;                                    // [0,399]
  const std::int64_t doy = (153 * (month > 2 ? month - 3 : month + 9) + 2) / 5 + day - 1;
  const std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0,146096]
  return era * 146097 + doe - 719468;
}

TimePoint TimePoint::from_unix_seconds(double sec) {
  return TimePoint(static_cast<Usec>(std::llround(sec * static_cast<double>(kUsecPerSec))));
}

TimePoint TimePoint::from_calendar(int year, int month, int day, int hour, int minute,
                                   int second, int usec) {
  CORAL_EXPECTS(month >= 1 && month <= 12);
  CORAL_EXPECTS(day >= 1 && day <= 31);
  CORAL_EXPECTS(valid_civil_date(year, month, day));
  CORAL_EXPECTS(hour >= 0 && hour < 24);
  CORAL_EXPECTS(minute >= 0 && minute < 60);
  CORAL_EXPECTS(second >= 0 && second < 61);
  CORAL_EXPECTS(usec >= 0 && usec < kUsecPerSec);
  const std::int64_t days = days_from_civil(year, month, day);
  Usec t = days * kUsecPerDay;
  t += static_cast<Usec>(hour) * kUsecPerHour;
  t += static_cast<Usec>(minute) * kUsecPerMin;
  t += static_cast<Usec>(second) * kUsecPerSec;
  t += usec;
  return TimePoint(t);
}

TimePoint TimePoint::parse_ras(const std::string& text) {
  // "YYYY-MM-DD-HH.MM.SS" with optional ".ffffff".
  if (text.size() < 19) throw ParseError("RAS timestamp too short: '" + text + "'");
  if (text[4] != '-' || text[7] != '-' || text[10] != '-' || text[13] != '.' ||
      text[16] != '.') {
    throw ParseError("malformed RAS timestamp: '" + text + "'");
  }
  const int year = parse_digits(text, 0, 4);
  const int month = parse_digits(text, 5, 2);
  const int day = parse_digits(text, 8, 2);
  const int hour = parse_digits(text, 11, 2);
  const int minute = parse_digits(text, 14, 2);
  const int second = parse_digits(text, 17, 2);
  int usec = 0;
  if (text.size() > 19) {
    if (text[19] != '.') throw ParseError("malformed RAS timestamp fraction: '" + text + "'");
    size_t ndigits = text.size() - 20;
    if (ndigits == 0 || ndigits > 6) {
      throw ParseError("bad fraction width in RAS timestamp: '" + text + "'");
    }
    usec = parse_digits(text, 20, ndigits);
    for (size_t i = ndigits; i < 6; ++i) usec *= 10;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || minute > 59 ||
      second > 60) {
    throw ParseError("out-of-range field in RAS timestamp: '" + text + "'");
  }
  if (!valid_civil_date(year, month, day)) {
    throw ParseError("impossible calendar date in RAS timestamp: '" + text + "'");
  }
  return from_calendar(year, month, day, hour, minute, second, usec);
}

CalendarTime to_calendar(TimePoint t) {
  Usec u = t.usec();
  std::int64_t days = u / kUsecPerDay;
  Usec rem = u % kUsecPerDay;
  if (rem < 0) {
    rem += kUsecPerDay;
    days -= 1;
  }
  CalendarTime c;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / kUsecPerHour);
  rem %= kUsecPerHour;
  c.minute = static_cast<int>(rem / kUsecPerMin);
  rem %= kUsecPerMin;
  c.second = static_cast<int>(rem / kUsecPerSec);
  c.usec = static_cast<int>(rem % kUsecPerSec);
  return c;
}

std::string TimePoint::to_ras_string() const {
  const CalendarTime c = to_calendar(*this);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d-%02d.%02d.%02d.%06d", c.year, c.month,
                c.day, c.hour, c.minute, c.second, c.usec);
  return buf;
}

std::string TimePoint::to_display_string() const {
  const CalendarTime c = to_calendar(*this);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day,
                c.hour, c.minute, c.second);
  return buf;
}

}  // namespace coral
