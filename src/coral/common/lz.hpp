#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace coral::bin::lz {

/// In-repo LZ77 byte compressor for the v3 block payloads — the container
/// must stay dependency-free, so this is a small LZ4-style scheme rather
/// than a binding to an external codec.
///
/// Stream layout: a sequence of {token | extended literal length | literals
/// | u16 LE match offset | extended match length} groups, LZ4 token
/// semantics (high nibble literal length, low nibble match length - 4, 15 =
/// "read 255-terminated extension bytes"). The final group carries only
/// literals — the decoder stops when the output reaches its declared size,
/// so no end marker is needed. Match offsets are <= 65535 and matches are
/// at least 4 bytes.
///
/// Compression is greedy over a 4-byte hash table: fast, deterministic, and
/// good enough on the varint column blocks (they are byte-repetitive by
/// construction). The exact compressed bytes are part of no contract —
/// only decompress(compress(x)) == x is.

/// Append the compressed form of `src` to `out`. Returns the number of
/// bytes appended. Never fails; incompressible input degrades to literal
/// runs (~0.4% expansion worst case).
std::size_t compress(std::string_view src, std::string& out);

/// Decompress exactly `dst_size` bytes into `dst`. Returns false on any
/// malformed input (truncated stream, offset pointing before the output
/// start, lengths overrunning `dst_size`) without writing out of bounds —
/// a CRC-valid but damaged block must fail cleanly, not scribble.
bool decompress(std::string_view src, char* dst, std::size_t dst_size);

}  // namespace coral::bin::lz
