#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coral {

/// Minimal RFC-4180-ish CSV writer: fields containing the separator, quotes,
/// or newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Write one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

/// Streaming CSV reader matching CsvWriter's dialect.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char sep = ',');

  /// Read the next row into `fields`. Returns false at end of input.
  /// Throws ParseError on an unterminated quoted field.
  bool read_row(std::vector<std::string>& fields);

 private:
  std::istream& in_;
  char sep_;
};

/// Parse a single CSV line (no embedded newlines) into fields.
std::vector<std::string> parse_csv_line(const std::string& line, char sep = ',');

}  // namespace coral
