#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "coral/common/ingest.hpp"

namespace coral {

/// Minimal RFC-4180-ish CSV writer: fields containing the separator, quotes,
/// or newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Write one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

/// Streaming CSV reader matching CsvWriter's dialect. Both it and
/// parse_csv_line() split fields through one shared state machine, so the
/// two can never disagree on quoting semantics.
///
/// Strict mode (the default) preserves the historical contract: the first
/// structural defect — an unterminated quoted field, or stray characters
/// after a closing quote ("ab"x,) — throws ParseError. Lenient mode is for
/// damaged inputs: stray characters after a closing quote are dropped, an
/// unterminated quote is closed at end of input, and a row whose quoting
/// cannot be balanced (a flipped bit injecting a quote mid-file) costs only
/// that physical line — the reader resynchronizes at the next line boundary
/// instead of swallowing the rest of the file into one runaway field.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char sep = ',',
                     ParseMode mode = ParseMode::Strict,
                     IngestReport* report = nullptr);

  /// Read the next row into `fields`. Returns false at end of input.
  /// Strict: throws ParseError on a structural defect. Lenient: recovers as
  /// described above, recording structure samples in the report (if any).
  bool read_row(std::vector<std::string>& fields);

  /// Byte offset (from the start of the stream) of the first character of
  /// the most recently returned row.
  std::uint64_t row_offset() const { return row_offset_; }

 private:
  bool read_row_strict(std::vector<std::string>& fields);
  bool read_row_lenient(std::vector<std::string>& fields);
  bool next_line(std::string& line, std::uint64_t& offset);

  std::istream& in_;
  char sep_;
  ParseMode mode_;
  IngestReport* report_;
  std::uint64_t pos_ = 0;         ///< bytes consumed from the stream
  std::uint64_t row_offset_ = 0;
  /// Lenient mode: physical lines read ahead during quote-balancing that
  /// turned out to belong to later rows (line text, byte offset).
  std::deque<std::pair<std::string, std::uint64_t>> pending_;
};

/// Parse a single CSV line (no embedded newlines) into fields, through the
/// same state machine as CsvReader. Strict: throws ParseError on an
/// unterminated quoted field, stray characters after a closing quote, or an
/// unquoted newline. Lenient: recovers (strays dropped, open quote closed at
/// end of line, anything after an unquoted newline ignored).
std::vector<std::string> parse_csv_line(const std::string& line, char sep = ',',
                                        ParseMode mode = ParseMode::Strict);

}  // namespace coral
