#include "coral/common/storev3.hpp"

#include <cstring>

#include "coral/common/error.hpp"
#include "coral/common/lz.hpp"

namespace coral::bin {

namespace {

template <typename T>
void append_raw(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

void append_string16(std::string& out, const std::string& s) {
  append_raw(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

}  // namespace

void append_store_meta(std::string& out, const StoreMeta& meta) {
  append_string16(out, meta.machine);
  append_string16(out, meta.schema);
  append_raw(out, meta.records_per_block);
  append_raw(out, meta.flags);
}

StoreMeta parse_store_meta(PayloadCursor& cur) {
  StoreMeta meta;
  meta.machine = cur.get_string(cur.get<std::uint16_t>());
  meta.schema = cur.get_string(cur.get<std::uint16_t>());
  meta.records_per_block = cur.get<std::uint32_t>();
  meta.flags = cur.get<std::uint8_t>();
  return meta;
}

void append_segment_footer(std::string& out, const std::vector<SegmentEntry>& entries) {
  append_raw(out, static_cast<std::uint32_t>(entries.size()));
  for (const SegmentEntry& e : entries) {
    append_raw(out, e.offset);
    append_raw(out, e.count);
    append_zone_map(out, e.zone);
  }
}

void parse_segment_footer(PayloadCursor& cur, std::vector<SegmentEntry>& out) {
  const auto n = cur.get<std::uint32_t>();
  // A footer entry is 44 bytes; a count its own payload cannot hold is
  // corruption, not a directory (a flipped count byte must not allocate
  // gigabytes).
  if (std::uint64_t{n} * kSegmentEntryBytes > cur.remaining()) {
    throw ParseError("implausible segment footer entry count");
  }
  // Grow geometrically: an exact reserve here would reallocate the whole
  // directory once per footer (a multi-segment file appends hundreds of
  // footers), turning the directory build quadratic.
  if (out.capacity() < out.size() + n) {
    out.reserve(std::max<std::size_t>(out.size() + n, out.capacity() * 2));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    SegmentEntry e;
    e.offset = cur.get<std::uint64_t>();
    e.count = cur.get<std::uint32_t>();
    const std::string_view zb = cur.take(kZoneMapBytes);
    std::size_t pos = 0;
    read_zone_map(zb, pos, e.zone);
    out.push_back(e);
  }
}

void append_column_body(std::string& out, const std::string& raw, bool compress) {
  const auto raw_size = static_cast<std::uint32_t>(raw.size());
  if (compress) {
    // Compress into place after the header, then back out unless it pays:
    // a block must shrink by at least 1/8 to earn its decompression cost
    // on the read path. Column bodies are already delta/dictionary-packed,
    // so marginal LZ wins (a few percent) buy almost no bytes but slow
    // every future read of the block; those blocks stay raw.
    const std::size_t header_at = out.size();
    out.push_back(static_cast<char>(kCodecLz));
    append_raw(out, raw_size);
    const std::size_t lz_size = lz::compress(raw, out);
    if (lz_size + raw.size() / 8 <= raw.size()) return;
    out.resize(header_at);
  }
  out.push_back(static_cast<char>(kCodecRaw));
  append_raw(out, raw_size);
  out.append(raw);
}

}  // namespace coral::bin
