#include "coral/common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace coral::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::set_obs(obs::Collector* collector) {
  std::lock_guard lock(mu_);
  obs_ = collector;
  if (collector != nullptr) {
    queue_depth_ = &collector->histogram("pool.queue_depth");
    task_wait_ms_ = &collector->histogram("pool.task_wait_ms");
    task_run_ms_ = &collector->histogram("pool.task_run_ms");
    tasks_run_ = &collector->counter("pool.tasks");
  } else {
    queue_depth_ = task_wait_ms_ = task_run_ms_ = nullptr;
    tasks_run_ = nullptr;
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    Task t{std::move(task), {}};
    if (obs_ != nullptr) {
      t.enqueued = obs::Clock::now();
      queue_depth_->record(static_cast<double>(tasks_.size() + 1));
    }
    tasks_.push(std::move(t));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    // Clear the latch *before* rethrowing: the error belongs to the batch
    // that just drained, and a stale latch would make the next (clean)
    // wait_idle rethrow a failure its tasks never produced.
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    Task task;
    obs::Histogram* wait_hist = nullptr;
    obs::Histogram* run_hist = nullptr;
    obs::Counter* run_count = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      if (obs_ != nullptr) {
        wait_hist = task_wait_ms_;
        run_hist = task_run_ms_;
        run_count = tasks_run_;
      }
    }
    obs::Clock::time_point start{};
    if (run_hist != nullptr) {
      start = obs::Clock::now();
      wait_hist->record(
          std::chrono::duration<double, std::milli>(start - task.enqueued).count());
    }
    try {
      task.fn();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (run_hist != nullptr) {
      run_hist->record(
          std::chrono::duration<double, std::milli>(obs::Clock::now() - start).count());
      run_count->add(1);
    }
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_chunks(std::size_t n, std::size_t min_chunk,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ThreadPool* pool) {
  // Explicit template argument so this forwards to the header implementation
  // instead of recursing into itself.
  parallel_for_chunks<const std::function<void(std::size_t, std::size_t)>&>(
      n, min_chunk, body, pool);
}

std::size_t configured_thread_count() {
  const char* env = std::getenv("CORAL_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  // All-digits only: strtol would skip leading whitespace and accept signs,
  // which we treat as malformed rather than guess at.
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

ThreadPool& default_pool() {
  static ThreadPool pool(configured_thread_count());
  return pool;
}

}  // namespace coral::par
