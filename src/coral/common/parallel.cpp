#include "coral/common/parallel.hpp"

#include <algorithm>

namespace coral::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_chunks(std::size_t n, std::size_t min_chunk,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ThreadPool* pool) {
  if (n == 0) return;
  const std::size_t threads = pool ? pool->thread_count() : 1;
  if (threads <= 1 || n <= min_chunk) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(threads * 4, std::max<std::size_t>(1, n / min_chunk));
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(n, begin + step);
    pool->submit([&body, begin, end] { body(begin, end); });
  }
  pool->wait_idle();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace coral::par
