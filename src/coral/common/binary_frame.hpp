#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "coral/common/ingest.hpp"

namespace coral::bin {

/// CRC-32 (IEEE 802.3 polynomial, reflected), the zlib/gzip checksum.
/// Slicing-by-8: eight bytes per table round instead of one.
std::uint32_t crc32(const void* data, std::size_t size);

/// Per-block framing for the v2 binary log formats.
///
/// Each block is `magic "CBLK" | u32 payload_size | u32 crc32(payload) |
/// payload` (all little-endian, written on little-endian hosts only — same
/// assumption the v1 record dumps already made). The frame makes corruption
/// *local*: a strict reader still throws on the first damaged byte, but a
/// lenient reader drops the damaged block and scans forward for the next
/// "CBLK" marker, so a burst of flipped bits or a mid-file truncation costs
/// one block of records instead of the whole log.
inline constexpr char kBlockMagic[4] = {'C', 'B', 'L', 'K'};
/// Upper bound on a plausible payload; larger sizes are treated as frame
/// corruption rather than honoured (a flipped size byte must not trigger a
/// gigabyte allocation).
inline constexpr std::uint32_t kMaxBlockPayload = 1u << 24;
/// Bytes of frame overhead preceding each payload (magic + size + crc).
inline constexpr std::size_t kBlockHeaderBytes =
    sizeof kBlockMagic + 2 * sizeof(std::uint32_t);

/// Append one framed block (header + crc + payload) to a byte buffer —
/// the in-memory counterpart of BlockWriter::flush(), so parallel writers
/// can frame blocks on worker threads and concatenate the results into the
/// exact byte sequence the serial writer produces.
void append_frame(std::string& out, std::string_view payload);

/// Accumulates payload bytes and writes them as framed blocks. Callers
/// decide block granularity by calling flush(); destruction flushes any
/// remaining bytes.
class BlockWriter {
 public:
  explicit BlockWriter(std::ostream& out) : out_(out) {}
  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;
  ~BlockWriter() { flush(); }

  void append(const void* data, std::size_t size);
  template <typename T>
  void put(T value) {
    append(&value, sizeof value);
  }
  void put_string(const std::string& s);

  std::size_t pending() const { return buf_.size(); }
  /// Write the buffered payload as one framed block (no-op when empty).
  void flush();

 private:
  std::ostream& out_;
  std::string buf_;
};

/// One block located by index_frames(): header at `offset` into the scanned
/// region, payload of `size` bytes at `offset + kBlockHeaderBytes`. The
/// stored checksum is carried so CRC verification can run later (and in
/// parallel) over the payload in place.
struct FrameRef {
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::uint32_t crc = 0;
};

/// Walk `region` as a sequence of framed blocks without touching payload
/// bytes (headers only — no CRC pass, no copies). Returns true when the
/// region is tiled exactly by well-formed frames, appending one FrameRef per
/// block; returns false at the first framing anomaly (bad magic, implausible
/// size, truncation), leaving `out` holding the frames located so far.
/// Callers that need damage recovery or exact damage messages fall back to
/// BlockReader, which is the authority on both.
bool index_frames(std::string_view region, std::vector<FrameRef>& out);

/// Reads framed blocks back. Strict mode throws ParseError (with the byte
/// offset) on any damaged frame; lenient mode records the damage in `report`
/// and resynchronizes at the next block marker.
class BlockReader {
 public:
  BlockReader(std::istream& in, ParseMode mode, IngestReport* report,
              const char* what)
      : in_(in), mode_(mode), report_(report), what_(what) {}

  /// Fetch the next intact block payload. Returns false at end of input
  /// (clean EOF in strict mode; in lenient mode also after trailing
  /// garbage, which is counted as one dropped frame).
  bool next(std::string& payload);

  /// Byte offset of the start of the block most recently returned.
  std::uint64_t block_offset() const { return block_offset_; }

 private:
  void fill(std::size_t want);
  void drop(std::size_t n);
  void note_damage(std::uint64_t offset, const char* detail);

  std::istream& in_;
  ParseMode mode_;
  IngestReport* report_;
  const char* what_;  ///< "binary RAS log" / "binary job log" for messages
  std::string pending_;           ///< bytes consumed from `in_`, not yet parsed
  std::uint64_t pending_base_ = 0;  ///< absolute offset of pending_[0]
  std::uint64_t block_offset_ = 0;
};

/// Incremental counterpart of BlockReader for byte streams that arrive in
/// pieces (a socket, a tailed file): push() appends raw bytes, next() yields
/// each complete intact payload as soon as its last byte is in, and finish()
/// signals end-of-stream so the final truncation accounting can run.
///
/// Damage semantics are BlockReader's, by construction: a damaged stretch —
/// however many resync steps it takes to find the next "CBLK" marker — is one
/// sample in `report` (strict mode throws instead), and byte offsets count
/// from the first byte ever pushed. A reader that push()es a whole file and
/// then finish()es produces the exact payload sequence and IngestReport of a
/// BlockReader over the same bytes; the session/wire ingest path leans on
/// that equivalence for its accounting parity with the offline readers.
class FrameAssembler {
 public:
  FrameAssembler(ParseMode mode, IngestReport* report, const char* what)
      : mode_(mode), report_(report), what_(what) {}

  /// Append raw stream bytes (any chunking; frame boundaries need not align).
  void push(std::string_view bytes);

  /// Fetch the next complete intact payload. Returns false when the buffered
  /// bytes do not (yet) contain one — call again after more push()es, or
  /// after finish() to drain the tail.
  bool next(std::string& payload);

  /// Byte offset of the start of the block most recently returned.
  std::uint64_t block_offset() const { return block_offset_; }

  /// Declare end-of-stream: leftover bytes that can no longer become a
  /// complete frame are accounted as damage (exactly as BlockReader does
  /// when its istream runs dry). next() may still yield payloads buffered
  /// before the call.
  void finish() { eos_ = true; }

  /// Bytes buffered but not yet consumed as frames (live backlog gauge).
  std::size_t buffered() const { return pending_.size(); }

 private:
  void drop(std::size_t n);
  void note_damage(std::uint64_t offset, const char* detail);
  /// Skip to the next possible "CBLK" marker. Returns false when the buffer
  /// was exhausted without one (wait for more bytes / end of tail).
  bool resync();

  ParseMode mode_;
  IngestReport* report_;
  const char* what_;
  std::string pending_;
  std::uint64_t pending_base_ = 0;
  std::uint64_t block_offset_ = 0;
  bool eos_ = false;
  /// True while inside a damaged stretch: follow-on damage is not re-counted
  /// until a good frame closes the stretch (BlockReader's per-call flag).
  bool in_damage_ = false;
};

/// A bounds-checked little-endian cursor over one block payload — a view,
/// so it reads equally from a BlockReader's copied payload or from a mapped
/// file region in place. get<T> failures surface the absolute byte offset of
/// the failing field.
class PayloadCursor {
 public:
  PayloadCursor(std::string_view payload, std::uint64_t base_offset,
                const char* what)
      : data_(payload), base_(base_offset), what_(what) {}

  template <typename T>
  T get() {
    T value{};
    read(&value, sizeof value);
    return value;
  }
  void read(void* dst, std::size_t n);
  std::string get_string(std::size_t n);
  /// Zero-copy view of the next n bytes, advancing the cursor. Throws like
  /// read() when fewer than n remain; the view aliases the payload.
  std::string_view take(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  /// Absolute input offset of the next unread byte.
  std::uint64_t offset() const { return base_ + pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint64_t base_;
  const char* what_;
};

}  // namespace coral::bin
