#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace coral::bin {

/// LEB128 varints + zigzag, the integer codec of the v3 column blocks
/// (see ras/binary_io.hpp for the format contract). Encoders append to a
/// std::string; decoders read from a string_view with an explicit cursor and
/// report malformed input by returning false — the block decoders translate
/// that into their usual strict-throw / lenient-skip behaviour.

inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Map signed to unsigned so small negative deltas stay short: 0,-1,1,-2 ->
/// 0,1,2,3.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_varint_signed(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Decode one varint at `pos`, advancing it. Returns false on truncation or
/// an over-long encoding (more than 10 bytes — a flipped continuation bit
/// must not read past the 64-bit range).
inline bool get_varint(std::string_view data, std::size_t& pos, std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < data.size() && shift < 64) {
    const auto byte = static_cast<std::uint8_t>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline bool get_varint_signed(std::string_view data, std::size_t& pos, std::int64_t& out) {
  std::uint64_t raw = 0;
  if (!get_varint(data, pos, raw)) return false;
  out = unzigzag(raw);
  return true;
}

}  // namespace coral::bin
