#include "coral/common/rng.hpp"

#include <cmath>

#include "coral/common/error.hpp"

namespace coral {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (cannot occur via splitmix64, but be explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next() ^ 0xA02BDBF7BB3C0A7ull); }

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CORAL_EXPECTS(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CORAL_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  CORAL_EXPECTS(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // guard log(0)
  return -mean * std::log(u);
}

double Rng::weibull(double shape, double scale) {
  CORAL_EXPECTS(shape > 0 && scale > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::normal() {
  // Box–Muller; the second value is discarded for simplicity (determinism
  // matters more than one extra log/sqrt here).
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::uint64_t Rng::poisson(double mean) {
  CORAL_EXPECTS(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction — adequate for the log
  // generator's large-count draws.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  CORAL_EXPECTS(!weights.empty());
  double total = 0;
  for (double w : weights) {
    CORAL_EXPECTS(w >= 0);
    total += w;
  }
  CORAL_EXPECTS(total > 0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  CORAL_EXPECTS(n > 0);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::pow(static_cast<double>(i + 1), -s);
  double r = uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    r -= std::pow(static_cast<double>(i + 1), -s);
    if (r < 0) return i;
  }
  return n - 1;
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  CORAL_EXPECTS(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    CORAL_EXPECTS(weights[i] >= 0);
    total += weights[i];
    cdf_[i] = total;
  }
  CORAL_EXPECTS(total > 0);
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  CORAL_EXPECTS(!cdf_.empty());
  const double u = rng.uniform();
  // Binary search for the first cdf entry > u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace coral
