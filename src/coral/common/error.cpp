#include "coral/common/error.hpp"

namespace coral::detail {

void throw_invalid(const char* expr, const char* file, int line) {
  throw InvalidArgument(std::string(expr) + " at " + file + ":" + std::to_string(line));
}

}  // namespace coral::detail
