#include "coral/common/zonemap.hpp"

#include <cstring>
#include <limits>

namespace coral::bin {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

void ZoneMap::add_location(std::uint32_t key, const machine::LocCodec& codec) {
  add_key(key);
  if (codec.is_rack(key)) {
    const machine::MidplaneId first = codec.rack_first_midplane(key);
    for (int i = 0; i < codec.midplanes_per_rack; ++i) {
      add_midplane(first + i);
    }
  } else {
    add_midplane(codec.midplane_of(key));
  }
}

void append_zone_map(std::string& out, const ZoneMap& zm) {
  append_u64(out, static_cast<std::uint64_t>(zm.min_usec));
  append_u64(out, static_cast<std::uint64_t>(zm.max_usec));
  append_u64(out, zm.midplane_bits);
  append_u32(out, zm.min_key);
  append_u32(out, zm.max_key);
}

bool read_zone_map(std::string_view data, std::size_t& pos, ZoneMap& zm) {
  if (data.size() - pos < kZoneMapBytes) return false;
  const char* p = data.data() + pos;
  zm.min_usec = static_cast<std::int64_t>(load_u64(p));
  zm.max_usec = static_cast<std::int64_t>(load_u64(p + 8));
  zm.midplane_bits = load_u64(p + 16);
  zm.min_key = load_u32(p + 24);
  zm.max_key = load_u32(p + 28);
  pos += kZoneMapBytes;
  return true;
}

ZoneFilter::ZoneFilter(const ReadPredicate& pred, const machine::LocCodec& codec,
                       int machine_midplanes)
    : begin_usec_(pred.time_begin ? pred.time_begin->usec()
                                  : std::numeric_limits<std::int64_t>::min()),
      end_usec_(pred.time_end ? pred.time_end->usec()
                              : std::numeric_limits<std::int64_t>::max()),
      codec_(codec) {
  if (!pred.midplanes.empty()) {
    constrain_midplanes_ = true;
    member_.assign(static_cast<std::size_t>(machine_midplanes < 0 ? 0 : machine_midplanes),
                   false);
    for (machine::MidplaneId mid : pred.midplanes) {
      if (mid < 0) continue;
      folded_ |= std::uint64_t{1} << (static_cast<std::uint32_t>(mid) & 63);
      if (static_cast<std::size_t>(mid) >= member_.size()) {
        member_.resize(static_cast<std::size_t>(mid) + 1, false);
      }
      member_[static_cast<std::size_t>(mid)] = true;
    }
  }
}

bool ZoneFilter::may_match(const ZoneMap& zm) const {
  // An empty zone map (block of zero records) matches nothing.
  if (zm.min_usec > zm.max_usec) return false;
  if (zm.max_usec < begin_usec_ || zm.min_usec >= end_usec_) return false;
  if (constrain_midplanes_ && (zm.midplane_bits & folded_) == 0) return false;
  return true;
}

bool ZoneFilter::match_location(std::uint32_t key) const {
  if (!constrain_midplanes_) return true;
  if (codec_.is_rack(key)) {
    return match_midplane_range(codec_.rack_first_midplane(key),
                                codec_.midplanes_per_rack);
  }
  const machine::MidplaneId mid = codec_.midplane_of(key);
  return mid >= 0 && static_cast<std::size_t>(mid) < member_.size() &&
         member_[static_cast<std::size_t>(mid)];
}

bool ZoneFilter::match_midplane_range(machine::MidplaneId first, int count) const {
  if (!constrain_midplanes_) return true;
  for (int i = 0; i < count; ++i) {
    const machine::MidplaneId mid = first + i;
    if (mid >= 0 && static_cast<std::size_t>(mid) < member_.size() &&
        member_[static_cast<std::size_t>(mid)]) {
      return true;
    }
  }
  return false;
}

}  // namespace coral::bin
