#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/zonemap.hpp"

namespace coral::bin {

/// Format machinery shared by the v3 RAS and job log stores (see
/// ras/binary_io.hpp for the full layout contract). Both formats reuse the
/// v2 CBLK framing and add three version-neutral payload shapes on top:
///
///   'M' meta: u16 len + machine name | u16 len + schema name |
///       u32 records per block | u8 flags. Written twice; makes a file
///       self-describing (which machine's codec, which column schema).
///   per-block column header: u32 record count | 32-byte ZoneMap |
///       u8 codec (0 = raw, 1 = in-repo LZ) | u32 raw (uncompressed) size |
///       body. The count and zone map stay uncompressed so predicate
///       pushdown can accept or skip a block without touching the body.
///   'S' segment footer: u32 n | n x { u64 block offset, u32 record count,
///       32-byte ZoneMap }, one entry per column block of the preceding
///       segment. Offsets count from the end of the 8-byte file header,
///       the coordinate every reader already reports. Footers let a reader
///       rebuild the block directory of an append-grown file without
///       decoding any record block, and let predicate reads skip
///       zone-rejected blocks without faulting their pages in at all.

inline constexpr std::uint8_t kCodecRaw = 0;
inline constexpr std::uint8_t kCodecLz = 1;
/// Meta flag: the writer had compression enabled (informational — each
/// block carries its own codec byte, incompressible blocks stay raw).
inline constexpr std::uint8_t kStoreFlagCompressed = 1;

struct StoreMeta {
  std::string machine;
  std::string schema;
  std::uint32_t records_per_block = 0;
  std::uint8_t flags = 0;
};

/// Serialize the meta body (caller prepends the tag byte).
void append_store_meta(std::string& out, const StoreMeta& meta);
/// Parse a meta body (cursor past the tag byte); throws ParseError via the
/// cursor on truncation.
StoreMeta parse_store_meta(PayloadCursor& cur);

/// One column block as recorded in a segment footer.
struct SegmentEntry {
  std::uint64_t offset = 0;  ///< frame offset, relative to the region start
  std::uint32_t count = 0;   ///< records in the block
  ZoneMap zone;
};
inline constexpr std::size_t kSegmentEntryBytes = 8 + 4 + kZoneMapBytes;

/// Serialize a footer body (caller prepends the tag byte).
void append_segment_footer(std::string& out, const std::vector<SegmentEntry>& entries);
/// Parse a footer body (cursor past the tag byte), appending to `out`.
/// Throws ParseError on truncation or an implausible entry count.
void parse_segment_footer(PayloadCursor& cur, std::vector<SegmentEntry>& out);

/// Append `codec | raw_size | body` for an already-built raw column body,
/// compressing when asked and the result actually shrinks.
void append_column_body(std::string& out, const std::string& raw, bool compress);

/// Record-block bookkeeping for the pushdown obs counters: every record
/// block seen is `total`; each is then `decoded` or (zone map rejected
/// under a predicate) `skipped`.
struct BlockCounters {
  std::uint64_t total = 0;
  std::uint64_t decoded = 0;
  std::uint64_t skipped = 0;

  void merge(const BlockCounters& o) {
    total += o.total;
    decoded += o.decoded;
    skipped += o.skipped;
  }
};

}  // namespace coral::bin
