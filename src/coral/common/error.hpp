#pragma once

#include <stdexcept>
#include <string>

namespace coral {

/// Base exception for all CORAL errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when parsing a log record, timestamp, or location string fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Thrown when a function precondition is violated by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

namespace detail {
[[noreturn]] void throw_invalid(const char* expr, const char* file, int line);
}  // namespace detail

/// Precondition check that throws InvalidArgument (never compiled out;
/// analysis code is not on a hot path where a branch matters).
#define CORAL_EXPECTS(expr)                                   \
  do {                                                        \
    if (!(expr)) ::coral::detail::throw_invalid(#expr, __FILE__, __LINE__); \
  } while (false)

}  // namespace coral
