#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace coral {

/// Split `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parse a non-negative integer; throws ParseError on any non-digit.
std::int64_t parse_int(std::string_view text);

/// Parse a floating-point number; throws ParseError on malformed input.
double parse_double(std::string_view text);

}  // namespace coral
