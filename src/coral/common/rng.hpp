#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace coral {

/// Deterministic pseudo-random engine (xoshiro256**), seeded via SplitMix64.
///
/// The standard library's distribution objects are implementation-defined,
/// which would make synthetic logs differ across toolchains. CORAL therefore
/// ships its own engine *and* its own samplers (all inverse-transform or
/// classic exact algorithms), so a seed reproduces the same log pair on every
/// platform.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Derive an independent child stream (jump-free splitting: the child is
  /// seeded from this stream's output through SplitMix64).
  Rng split();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) using Lemire's rejection method (unbiased).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential variate with given mean (inverse transform).
  double exponential(double mean);

  /// Weibull variate with shape k and scale lambda (inverse transform).
  double weibull(double shape, double scale);

  /// Standard normal variate (Box–Muller, both values used).
  double normal();

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Poisson variate (Knuth for small mean, PTRS-like normal approx fallback).
  std::uint64_t poisson(double mean);

  /// Index drawn from unnormalized weights (linear scan inverse transform).
  std::size_t categorical(std::span<const double> weights);

  /// Zipf-distributed rank in [0, n): P(i) ∝ 1/(i+1)^s. O(1) draws after an
  /// O(n) table build are the caller's job; this is the simple O(n) version
  /// suitable for moderate n.
  std::size_t zipf(std::size_t n, double s);

 private:
  std::uint64_t s_[4];
};

/// Precomputed alias-free cumulative table for repeated categorical draws.
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  /// Build from unnormalized non-negative weights; throws InvalidArgument if
  /// all weights are zero or any is negative.
  explicit DiscreteSampler(std::span<const double> weights);

  /// Draw an index in [0, size()).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  bool empty() const { return cdf_.empty(); }

 private:
  std::vector<double> cdf_;  // normalized, last element == 1.0
};

}  // namespace coral
