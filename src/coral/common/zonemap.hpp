#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coral/common/time.hpp"
#include "coral/machine/codec.hpp"

namespace coral::bin {

/// Per-block index entry of the v3 log store: the min/max event time, a
/// folded midplane bitmap and the min/max packed location key of one record
/// block, written as an uncompressed 32-byte prefix of every compressed
/// block payload (and repeated in the segment footers). Readers evaluate a
/// ReadPredicate against this and skip non-matching blocks without
/// decompressing — the predicate-pushdown contract.
///
/// The bitmap folds machine midplane ids mod 64 (bit = id % 64), so a test
/// can false-positive on machines with more than 64 midplanes but never
/// false-negative: pushdown stays a *conservative* filter and the reader's
/// exact per-record predicate does the rest. Rack-level locations set the
/// bits of every midplane in the rack.
///
/// Job blocks reuse the same shape: time covers [min start, max end],
/// the bitmap folds every midplane of every partition, and the key range
/// carries [min first-midplane, max last-midplane] as plain integers.
struct ZoneMap {
  std::int64_t min_usec = INT64_MAX;
  std::int64_t max_usec = INT64_MIN;
  std::uint64_t midplane_bits = 0;
  std::uint32_t min_key = UINT32_MAX;
  std::uint32_t max_key = 0;

  void add_time(std::int64_t usec) {
    if (usec < min_usec) min_usec = usec;
    if (usec > max_usec) max_usec = usec;
  }
  void add_key(std::uint32_t key) {
    if (key < min_key) min_key = key;
    if (key > max_key) max_key = key;
  }
  void add_midplane(machine::MidplaneId mid) {
    midplane_bits |= std::uint64_t{1} << (static_cast<std::uint32_t>(mid) & 63);
  }
  /// Fold every midplane a packed location key touches (rack-level keys
  /// cover the whole rack), and track the key range.
  void add_location(std::uint32_t key, const machine::LocCodec& codec);
};

/// Serialized size of a ZoneMap (fixed little-endian layout, pinned by the
/// v3 golden-layout test).
inline constexpr std::size_t kZoneMapBytes = 8 + 8 + 8 + 4 + 4;

void append_zone_map(std::string& out, const ZoneMap& zm);
/// Parse a zone map at `pos`, advancing it; false on truncation.
bool read_zone_map(std::string_view data, std::size_t& pos, ZoneMap& zm);

/// A pushdown predicate for the binary log readers: keep records inside
/// [time_begin, time_end) that touch any of `midplanes`. Unset fields do
/// not constrain. The reader uses it twice — conservatively against v3
/// zone maps to skip whole blocks, then exactly against each decoded
/// record — so the result is identical to a full read followed by the
/// same record filter, regardless of block layout or format version
/// (a v2 file simply decodes every block).
///
/// RAS semantics: event_time in range, location touches a listed midplane
/// (rack-level locations touch every midplane of the rack). Job semantics:
/// the job's [start_time, end_time] overlaps the range (end >= begin and
/// start < end-bound) and its partition contains a listed midplane.
struct ReadPredicate {
  std::optional<TimePoint> time_begin;  ///< inclusive lower bound
  std::optional<TimePoint> time_end;    ///< exclusive upper bound
  std::vector<machine::MidplaneId> midplanes;  ///< empty = any location

  bool unconstrained() const {
    return !time_begin && !time_end && midplanes.empty();
  }
};

/// ReadPredicate compiled for the hot path: closed time bounds, the folded
/// bitmap for zone tests and a dense midplane membership table for exact
/// per-record tests.
class ZoneFilter {
 public:
  ZoneFilter(const ReadPredicate& pred, const machine::LocCodec& codec,
             int machine_midplanes);

  /// Conservative block test: may keep a non-matching block (folded bitmap
  /// collisions), never drops a matching one.
  bool may_match(const ZoneMap& zm) const;

  bool match_time(std::int64_t usec) const {
    return usec >= begin_usec_ && usec < end_usec_;
  }
  /// Overlap test for an interval (job lifetime vs the predicate range).
  bool match_span(std::int64_t start_usec, std::int64_t end_usec) const {
    return end_usec >= begin_usec_ && start_usec < end_usec_;
  }
  /// Exact location test for a packed RAS location key.
  bool match_location(std::uint32_t key) const;
  /// Exact test for a contiguous midplane range [first, first + count).
  bool match_midplane_range(machine::MidplaneId first, int count) const;
  bool any_midplane() const { return !constrain_midplanes_; }

 private:
  std::int64_t begin_usec_;
  std::int64_t end_usec_;
  bool constrain_midplanes_ = false;
  std::uint64_t folded_ = 0;
  std::vector<bool> member_;  ///< dense membership, indexed by midplane id
  machine::LocCodec codec_;
};

}  // namespace coral::bin
