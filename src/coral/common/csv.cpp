#include "coral/common/csv.hpp"

#include <istream>
#include <ostream>

#include "coral/common/error.hpp"

namespace coral {

namespace {

bool needs_quoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

/// The one field-splitting state machine behind CsvReader::read_row and
/// parse_csv_line. Feed characters; a quote opens a quoted field only at
/// field start, doubled quotes embed a literal quote, and the row ends at an
/// unquoted newline (callers translate '\r'/'\r\n' terminators to '\n').
class FieldSplitter {
 public:
  FieldSplitter(std::vector<std::string>& out, char sep, ParseMode mode,
                std::uint64_t row_offset)
      : out_(out), sep_(sep), mode_(mode), row_offset_(row_offset) {
    out_.clear();
  }

  /// Consume one character; returns true when the row terminated (an
  /// unquoted '\n' was consumed).
  bool feed(char ch) {
    switch (state_) {
      case State::FieldStart:
        if (ch == '"') {
          state_ = State::Quoted;
        } else if (ch == sep_) {
          end_field();
        } else if (ch == '\n') {
          end_field();
          return true;
        } else {
          field_ += ch;
          state_ = State::Unquoted;
        }
        return false;
      case State::Unquoted:
        if (ch == sep_) {
          end_field();
          state_ = State::FieldStart;
        } else if (ch == '\n') {
          end_field();
          return true;
        } else {
          field_ += ch;  // a quote after other characters is literal
        }
        return false;
      case State::Quoted:
        if (ch == '"') {
          state_ = State::QuoteInQuoted;
        } else {
          field_ += ch;
        }
        return false;
      case State::QuoteInQuoted:
        if (ch == '"') {
          field_ += '"';
          state_ = State::Quoted;
        } else if (ch == sep_) {
          end_field();
          state_ = State::FieldStart;
        } else if (ch == '\n') {
          end_field();
          return true;
        } else {
          if (mode_ == ParseMode::Strict) {
            throw ParseError("stray character after closing quote in CSV field at byte offset " +
                             std::to_string(row_offset_));
          }
          state_ = State::AfterQuote;  // lenient: drop the stray character
        }
        return false;
      case State::AfterQuote:  // lenient only
        if (ch == sep_) {
          end_field();
          state_ = State::FieldStart;
        } else if (ch == '\n') {
          end_field();
          return true;
        }  // else: keep dropping strays
        return false;
    }
    return false;
  }

  /// End of input: close the final field. Strict throws on an open quote.
  void finish(const std::string* context) {
    if (state_ == State::Quoted && mode_ == ParseMode::Strict) {
      throw ParseError("unterminated quoted CSV field" +
                       (context != nullptr ? ": '" + *context + "'"
                                           : " at byte offset " + std::to_string(row_offset_)));
    }
    end_field();
  }

  /// Whether a '\r' arriving now is quoted data rather than a row terminator.
  bool cr_is_data() const { return state_ == State::Quoted; }

 private:
  enum class State { FieldStart, Unquoted, Quoted, QuoteInQuoted, AfterQuote };

  void end_field() {
    out_.push_back(std::move(field_));
    field_.clear();
  }

  std::vector<std::string>& out_;
  std::string field_;
  char sep_;
  ParseMode mode_;
  std::uint64_t row_offset_;
  State state_ = State::FieldStart;
};

/// Split `text` (one logical row, possibly with quoted newlines) into
/// fields. Returns the number of characters consumed: less than text.size()
/// when an unquoted newline ended the row early.
std::size_t split_fields(std::vector<std::string>& fields, const std::string& text,
                         char sep, ParseMode mode, std::uint64_t offset) {
  FieldSplitter splitter(fields, sep, mode, offset);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (splitter.feed(text[i])) return i + 1;
  }
  splitter.finish(&text);
  return text.size();
}

/// Structural quotes toggle in/out of quoted fields, so a row whose quote
/// count is odd cannot be complete — unless the odd quote is a literal one
/// in an unquoted field, which the caller's splitter pass sorts out.
bool quotes_unbalanced(const std::string& text) {
  std::size_t quotes = 0;
  for (const char c : text) quotes += c == '"' ? 1u : 0u;
  return quotes % 2 != 0;
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    const std::string& f = fields[i];
    if (needs_quoting(f, sep_)) {
      out_ << '"';
      for (char c : f) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << f;
    }
  }
  out_ << '\n';
}

CsvReader::CsvReader(std::istream& in, char sep, ParseMode mode, IngestReport* report)
    : in_(in), sep_(sep), mode_(mode), report_(report) {}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  return mode_ == ParseMode::Strict ? read_row_strict(fields) : read_row_lenient(fields);
}

bool CsvReader::read_row_strict(std::vector<std::string>& fields) {
  int c = in_.get();
  if (c == std::istream::traits_type::eof()) return false;
  row_offset_ = pos_;
  ++pos_;
  FieldSplitter splitter(fields, sep_, ParseMode::Strict, row_offset_);
  while (true) {
    const char ch = static_cast<char>(c);
    if (ch == '\r' && !splitter.cr_is_data()) {
      if (in_.peek() == '\n') {
        in_.get();
        ++pos_;
      }
      splitter.feed('\n');
      return true;
    }
    if (splitter.feed(ch)) return true;
    c = in_.get();
    if (c == std::istream::traits_type::eof()) {
      splitter.finish(nullptr);
      return true;
    }
    ++pos_;
  }
}

bool CsvReader::read_row_lenient(std::vector<std::string>& fields) {
  // Physical lines a quoted field may legitimately span before the open
  // quote is declared damage rather than data.
  constexpr int kMaxContinuations = 8;
  std::string line;
  std::uint64_t offset = 0;
  if (!next_line(line, offset)) return false;

  // Join continuation lines while the quote parity says a quoted field is
  // still open. If it never balances, fall back to parsing the first
  // physical line alone — losing at most that line, not the rest of the
  // file — and requeue the lines read ahead.
  std::string logical = line;
  std::deque<std::pair<std::string, std::uint64_t>> used;
  while (quotes_unbalanced(logical) &&
         static_cast<int>(used.size()) < kMaxContinuations) {
    std::string more;
    std::uint64_t more_offset = 0;
    if (!next_line(more, more_offset)) break;
    used.emplace_back(more, more_offset);
    logical += '\n';
    logical += more;
  }
  if (quotes_unbalanced(logical)) {
    if (report_ != nullptr && !used.empty()) {
      // The open quote swallowed lookahead lines; flag the damaged row (the
      // row itself still reaches the caller and is judged by the schema).
      report_->add_malformed(IngestReason::CsvStructure, offset, line,
                             "unbalanced quote; resynchronized at next line");
    }
    while (!used.empty()) {
      pending_.push_front(std::move(used.back()));
      used.pop_back();
    }
    logical = std::move(line);
  }

  row_offset_ = offset;
  const std::size_t consumed =
      split_fields(fields, logical, sep_, ParseMode::Lenient, offset);
  if (consumed < logical.size()) {
    // The parity heuristic joined too much (a literal quote in an unquoted
    // field): everything after the unquoted newline belongs to later rows.
    pending_.emplace_front(logical.substr(consumed), offset + consumed);
  }
  return true;
}

bool CsvReader::next_line(std::string& line, std::uint64_t& offset) {
  if (!pending_.empty()) {
    line = std::move(pending_.front().first);
    offset = pending_.front().second;
    pending_.pop_front();
    return true;
  }
  line.clear();
  offset = pos_;
  int c = in_.get();
  if (c == std::istream::traits_type::eof()) return false;
  while (c != std::istream::traits_type::eof()) {
    ++pos_;
    if (c == '\n') break;
    line += static_cast<char>(c);
    c = in_.get();
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::vector<std::string> parse_csv_line(const std::string& line, char sep, ParseMode mode) {
  std::vector<std::string> fields;
  const std::size_t consumed = split_fields(fields, line, sep, mode, 0);
  if (consumed < line.size() && mode == ParseMode::Strict) {
    throw ParseError("unquoted newline in CSV line: '" + line + "'");
  }
  return fields;
}

}  // namespace coral
