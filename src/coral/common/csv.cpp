#include "coral/common/csv.hpp"

#include <istream>
#include <ostream>

#include "coral/common/error.hpp"

namespace coral {

namespace {

bool needs_quoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    const std::string& f = fields[i];
    if (needs_quoting(f, sep_)) {
      out_ << '"';
      for (char c : f) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << f;
    }
  }
  out_ << '\n';
}

CsvReader::CsvReader(std::istream& in, char sep) : in_(in), sep_(sep) {}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  fields.clear();
  int c = in_.get();
  if (c == std::istream::traits_type::eof()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (true) {
    if (c == std::istream::traits_type::eof()) {
      if (in_quotes) throw ParseError("unterminated quoted CSV field");
      break;
    }
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        const int peek = in_.peek();
        if (peek == '"') {
          field += '"';
          in_.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == sep_) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      // swallow; handle \r\n
      const int peek = in_.peek();
      if (peek == '\n') in_.get();
      break;
    } else {
      field += ch;
    }
    c = in_.get();
  }
  (void)saw_any;
  fields.push_back(std::move(field));
  return true;
}

std::vector<std::string> parse_csv_line(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == sep) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += ch;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field: '" + line + "'");
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace coral
