#include "coral/common/instrument.hpp"

#include "coral/common/strings.hpp"

namespace coral {

void RecordingSink::record(const StageSample& sample) {
  std::lock_guard lock(mu_);
  samples_.push_back(sample);
}

std::vector<StageSample> RecordingSink::samples() const {
  std::lock_guard lock(mu_);
  return samples_;
}

double RecordingSink::total_ms(std::string_view stage) const {
  std::lock_guard lock(mu_);
  double total = 0;
  for (const StageSample& s : samples_) {
    if (s.stage == stage) total += s.wall_ms;
  }
  return total;
}

std::string RecordingSink::to_json() const {
  std::lock_guard lock(mu_);
  std::string out = "[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const StageSample& s = samples_[i];
    out += strformat("%s{\"stage\": \"%s\", \"wall_ms\": %.3f, \"in\": %llu, \"out\": %llu}",
                     i == 0 ? "" : ", ", s.stage.c_str(), s.wall_ms,
                     static_cast<unsigned long long>(s.in),
                     static_cast<unsigned long long>(s.out));
  }
  out += "]";
  return out;
}

}  // namespace coral
