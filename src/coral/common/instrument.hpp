#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace coral {

/// One measured pipeline stage: wall time plus how many records (or groups)
/// flowed in and out. Stage names are stable identifiers ("ingest",
/// "filter.coalesce", "matching", ...) so downstream tooling can aggregate
/// across runs.
struct StageSample {
  std::string stage;
  double wall_ms = 0;
  std::uint64_t in = 0;   ///< records/groups entering the stage
  std::uint64_t out = 0;  ///< records/groups leaving the stage
};

/// Receives per-stage measurements from instrumented layers.
///
/// Contract: `record` may be called from any worker thread of the analysis
/// (sharded stages report per shard), so implementations must be
/// thread-safe. The *null* sink — a nullptr in Context — is the
/// zero-overhead default: instrumented code never reads a clock or builds a
/// sample when no sink is attached.
class InstrumentationSink {
 public:
  virtual ~InstrumentationSink() = default;
  virtual void record(const StageSample& sample) = 0;
};

/// Thread-safe accumulating sink: keeps every sample in arrival order and
/// can render them as machine-readable JSON (the BENCH_*.json stage-timing
/// payload).
class RecordingSink final : public InstrumentationSink {
 public:
  void record(const StageSample& sample) override;

  std::vector<StageSample> samples() const;

  /// Total wall-ms across every sample with this stage name (a sharded
  /// stage reports once per shard).
  double total_ms(std::string_view stage) const;

  /// JSON array of {"stage", "wall_ms", "in", "out"} objects.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<StageSample> samples_;
};

/// RAII stage timer. Reads the clock only when a sink is attached and
/// reports on destruction (or on an explicit report()); with a null sink
/// the whole object compiles down to a couple of pointer stores.
class StageTimer {
 public:
  StageTimer(InstrumentationSink* sink, const char* stage) : sink_(sink), stage_(stage) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { report(); }

  void counts(std::uint64_t in, std::uint64_t out) {
    in_ = in;
    out_ = out;
  }

  /// Emit the sample now instead of at scope exit (idempotent).
  void report() {
    if (sink_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    sink_->record({stage_, std::chrono::duration<double, std::milli>(end - start_).count(),
                   in_, out_});
    sink_ = nullptr;
  }

 private:
  InstrumentationSink* sink_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t in_ = 0;
  std::uint64_t out_ = 0;
};

}  // namespace coral
