#include "coral/common/ingest.hpp"

#include "coral/common/instrument.hpp"

namespace coral {

std::string_view to_string(IngestReason reason) {
  switch (reason) {
    case IngestReason::CsvStructure:
      return "csv_structure";
    case IngestReason::RowWidth:
      return "row_width";
    case IngestReason::BadTimestamp:
      return "bad_timestamp";
    case IngestReason::BadLocation:
      return "bad_location";
    case IngestReason::BadNumber:
      return "bad_number";
    case IngestReason::UnknownErrcode:
      return "unknown_errcode";
    case IngestReason::BadSeverity:
      return "bad_severity";
    case IngestReason::BadRecord:
      return "bad_record";
    case IngestReason::BinaryFrame:
      return "binary_frame";
  }
  return "unknown";
}

void IngestReport::add_malformed(IngestReason reason, std::uint64_t byte_offset,
                                 std::string_view snippet, std::string detail) {
  counts_[static_cast<std::size_t>(reason)] += 1;
  if (samples_.size() < kMaxSamples) {
    constexpr std::size_t kSnippetBytes = 64;
    IngestSample s;
    s.reason = reason;
    s.byte_offset = byte_offset;
    s.detail = std::move(detail);
    s.snippet = std::string(snippet.substr(0, kSnippetBytes));
    samples_.push_back(std::move(s));
  }
}

void IngestReport::add_malformed_bulk(IngestReason reason, std::uint64_t n) {
  counts_[static_cast<std::size_t>(reason)] += n;
}

std::uint64_t IngestReport::malformed(IngestReason reason) const {
  return counts_[static_cast<std::size_t>(reason)];
}

std::uint64_t IngestReport::total_malformed() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

void IngestReport::merge(const IngestReport& other) {
  records_ok_ += other.records_ok_;
  for (std::size_t i = 0; i < kIngestReasonCount; ++i) counts_[i] += other.counts_[i];
  for (const IngestSample& s : other.samples_) {
    if (samples_.size() >= kMaxSamples) break;
    samples_.push_back(s);
  }
}

void IngestReport::adopt_samples(const IngestReport& other) {
  for (const IngestSample& s : other.samples_) {
    if (samples_.size() >= kMaxSamples) break;
    samples_.push_back(s);
  }
}

std::string IngestReport::summary() const {
  std::string out = std::to_string(records_ok_) + " ok, " +
                    std::to_string(total_malformed()) + " malformed";
  if (total_malformed() == 0) return out;
  out += " (";
  bool first = true;
  for (std::size_t i = 0; i < kIngestReasonCount; ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += std::string(to_string(static_cast<IngestReason>(i))) + ": " +
           std::to_string(counts_[i]);
  }
  out += ")";
  return out;
}

void IngestReport::report_malformed(InstrumentationSink* sink,
                                    const std::string& stage) const {
  if (sink == nullptr) return;
  for (std::size_t i = 0; i < kIngestReasonCount; ++i) {
    if (counts_[i] == 0) continue;
    sink->record({stage + ".malformed." + std::string(to_string(static_cast<IngestReason>(i))),
                  0, counts_[i], 0});
  }
}

}  // namespace coral
