#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coral {

class InstrumentationSink;

/// How a log reader reacts to malformed input.
///
/// Strict is the historical behaviour: the first malformed byte anywhere in
/// the input throws ParseError and aborts the whole load. Lenient mode is for
/// logs as they actually arrive off a production machine — truncated,
/// bit-flipped, cut mid-rotation: malformed records are skipped and counted
/// (per reason, with byte offsets and samples in an IngestReport) and the
/// reader resynchronizes at the next row boundary (CSV) or the next framed
/// block (binary v2).
enum class ParseMode {
  Strict,   ///< throw ParseError on the first malformed record
  Lenient,  ///< skip-and-count malformed records, resynchronize, keep going
};

/// Why a record was rejected during ingest. Stable identifiers: counters are
/// keyed by these across CSV and binary readers of both logs.
enum class IngestReason : std::uint8_t {
  CsvStructure,    ///< damaged row framing: unbalanced quote, stray bytes
  RowWidth,        ///< wrong number of fields for the schema
  BadTimestamp,    ///< unparseable or impossible EVENT_TIME / *_TIME field
  BadLocation,     ///< unparseable LOCATION / partition name
  BadNumber,       ///< unparseable integer or floating-point field
  UnknownErrcode,  ///< ERRCODE not present in the target catalog
  BadSeverity,     ///< unknown SEVERITY name
  BadRecord,       ///< semantically impossible record (e.g. end < start)
  BinaryFrame,     ///< binary block dropped: bad magic, CRC mismatch, truncation
};
inline constexpr std::size_t kIngestReasonCount = 9;

std::string_view to_string(IngestReason reason);

/// One retained example of a malformed record (the first few per report).
struct IngestSample {
  IngestReason reason = IngestReason::CsvStructure;
  std::uint64_t byte_offset = 0;  ///< offset of the record in the input stream
  std::string detail;             ///< parser message explaining the rejection
  std::string snippet;            ///< leading bytes of the offending record
};

/// Ingest-health ledger for one reader pass: how many records survived, how
/// many were rejected per reason, and the first few offenders with byte
/// offsets. Strict-mode reads fill it too (all-ok or throw), so callers can
/// use one code path for accounting in either mode.
class IngestReport {
 public:
  /// Retained malformed-record samples per report (first N in input order).
  static constexpr std::size_t kMaxSamples = 8;

  void add_ok(std::uint64_t n = 1) { records_ok_ += n; }
  void add_malformed(IngestReason reason, std::uint64_t byte_offset,
                     std::string_view snippet, std::string detail);
  /// Bulk counter for records lost inside a dropped binary block, where the
  /// individual records cannot be sampled.
  void add_malformed_bulk(IngestReason reason, std::uint64_t n);

  std::uint64_t records_ok() const { return records_ok_; }
  std::uint64_t malformed(IngestReason reason) const;
  std::uint64_t total_malformed() const;
  std::uint64_t records_seen() const { return records_ok_ + total_malformed(); }
  bool clean() const { return total_malformed() == 0; }

  const std::vector<IngestSample>& samples() const { return samples_; }

  /// Fold another report into this one (sample list keeps the first
  /// kMaxSamples across both, this report's first).
  void merge(const IngestReport& other);

  /// Copy only the retained samples from `other`, leaving every counter
  /// untouched. Used by the binary readers, which re-express frame-level
  /// damage episodes as an exact bulk record count but still want the
  /// per-episode offsets and details as diagnostics.
  void adopt_samples(const IngestReport& other);

  /// Human-readable digest, e.g.
  /// "1234 ok, 3 malformed (row_width: 2, bad_timestamp: 1)".
  std::string summary() const;

  /// Publish the malformed-record counters to an instrumentation sink
  /// (no-op on nullptr): one "<stage>.malformed.<reason>" sample per nonzero
  /// reason counter, with `in` = the count. The reader itself emits the
  /// "<stage>" sample (wall time, records seen -> records kept) via
  /// StageTimer, so ingest health lands alongside the engine stage timings.
  void report_malformed(InstrumentationSink* sink, const std::string& stage) const;

 private:
  std::uint64_t counts_[kIngestReasonCount] = {};
  std::uint64_t records_ok_ = 0;
  std::vector<IngestSample> samples_;
};

}  // namespace coral
