#include "coral/fault/process.hpp"

#include <cmath>

#include "coral/common/error.hpp"

namespace coral::fault {

using bgp::LocationKind;
using bgp::MidplaneId;
using bgp::Topology;
using ras::Catalog;
using ras::ErrcodeId;
using ras::ErrcodeInfo;
using ras::FaultNature;
using ras::JobImpact;

SystemFaultProcess::SystemFaultProcess(const FaultConfig& config, Rng rng,
                                       const Catalog& catalog,
                                       const machine::MachineModel& machine)
    : config_(config), rng_(rng), catalog_(&catalog), machine_(&machine) {
  std::vector<double> weights[4];
  for (ErrcodeId id : catalog.fatal_ids()) {
    const ErrcodeInfo& info = catalog.info(id);
    if (info.nature == FaultNature::ApplicationError) continue;  // driven by jobs
    TriggerClass cls;
    if (info.impact == JobImpact::Benign) {
      cls = TriggerClass::Benign;
    } else if (info.idle_bias) {
      cls = TriggerClass::IdleHardware;
    } else if (info.persistent) {
      cls = TriggerClass::Persistent;
    } else {
      cls = TriggerClass::Interrupting;
    }
    const auto c = static_cast<std::size_t>(cls);
    class_codes_[c].push_back(id);
    weights[c].push_back(info.weight);
  }
  // Small custom catalogs may leave a trigger class with no codes; such a
  // class simply never fires (its rate is forced to 0 below).
  for (std::size_t c = 0; c < 4; ++c) {
    if (!class_codes_[c].empty()) class_samplers_[c] = DiscreteSampler(weights[c]);
  }
}

double SystemFaultProcess::class_rate_per_usec(TriggerClass cls) const {
  if (class_codes_[static_cast<std::size_t>(cls)].empty()) return 0;
  double per_day = 0;
  switch (cls) {
    case TriggerClass::Interrupting: per_day = config_.interrupting_rate_per_day; break;
    case TriggerClass::Persistent: per_day = config_.persistent_rate_per_day; break;
    case TriggerClass::IdleHardware: per_day = config_.idle_rate_per_day; break;
    case TriggerClass::Benign: per_day = config_.benign_rate_per_day; break;
  }
  return per_day / static_cast<double>(kUsecPerDay);
}

double SystemFaultProcess::state_multiplier(TimePoint t) {
  while (t >= state_until_) {
    if (degraded_) {
      degraded_ = false;
      const double gap_days = rng_.exponential(config_.mean_days_between_degraded);
      state_until_ = state_until_ + static_cast<Usec>(gap_days * kUsecPerDay);
    } else {
      degraded_ = true;
      const double hours = rng_.exponential(config_.degraded_mean_hours);
      state_until_ = state_until_ + static_cast<Usec>(hours * kUsecPerHour);
    }
  }
  return degraded_ ? config_.degraded_multiplier : 1.0;
}

double SystemFaultProcess::drift_factor(TimePoint t) const {
  if (config_.rate_drift_per_year == 0.0) return 1.0;
  const double years =
      static_cast<double>(t - drift_origin_) / (365.25 * static_cast<double>(kUsecPerDay));
  return std::max(0.0, 1.0 + config_.rate_drift_per_year * years);
}

std::optional<Trigger> SystemFaultProcess::next(TimePoint now, TimePoint end) {
  if (!drift_origin_set_) {
    drift_origin_ = now;
    drift_origin_set_ = true;
  }
  // Superposed thinning across the four classes at the max (degraded) rate.
  double total_rate = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    total_rate += class_rate_per_usec(static_cast<TriggerClass>(c));
  }
  if (total_rate <= 0) return std::nullopt;  // fault-free configuration
  // The drift factor is monotone in t, so its peak over (now, end) is at one
  // of the endpoints; thinning against the peak keeps the process exact.
  // With drift 0 both factors are exactly 1.0 and every multiplication below
  // is an IEEE identity, so the RNG stream matches the drift-free process
  // bit for bit.
  const double peak_drift = std::max(drift_factor(now), drift_factor(end));
  const double max_rate = total_rate * config_.degraded_multiplier * peak_drift;
  if (max_rate <= 0) return std::nullopt;  // drifted to extinction
  TimePoint t = now;
  while (true) {
    t = t + static_cast<Usec>(rng_.exponential(1.0 / max_rate));
    if (t >= end) return std::nullopt;
    const double mult = state_multiplier(t) * drift_factor(t);
    if (!rng_.bernoulli(mult / (config_.degraded_multiplier * peak_drift))) continue;
    // Accepted: pick the class proportionally to its base rate.
    const double classes[4] = {
        class_rate_per_usec(TriggerClass::Interrupting),
        class_rate_per_usec(TriggerClass::Persistent),
        class_rate_per_usec(TriggerClass::IdleHardware),
        class_rate_per_usec(TriggerClass::Benign),
    };
    const auto cls = static_cast<TriggerClass>(rng_.categorical(classes));
    return Trigger{t, cls, pick_code(cls)};
  }
}

ErrcodeId SystemFaultProcess::pick_code(TriggerClass cls) {
  const auto c = static_cast<std::size_t>(cls);
  return class_codes_[c][class_samplers_[c].sample(rng_)];
}

bgp::Location location_on_midplane(LocationKind kind, MidplaneId mid, Rng& rng) {
  return machine::bgp_model().location_on_midplane(kind, mid, rng);
}

std::optional<bgp::Location> SystemFaultProcess::choose_location(const Trigger& trigger,
                                                                 const OccupancyView& view) {
  const ErrcodeInfo& info = catalog_->info(trigger.code);
  const MidplaneId midplane_count = machine_->midplane_count();
  const machine::LocCodec codec = machine_->codec();
  std::vector<double> weights(static_cast<std::size_t>(midplane_count), 0.0);
  double total = 0;

  const int mpr = codec.midplanes_per_rack;
  const auto footprint_idle = [&](MidplaneId m) {
    if (view.busy(m)) return false;
    if (info.loc_kind == LocationKind::Rack) {
      // Rack-level hardware touches every sibling midplane in the rack too.
      const MidplaneId first = (m / mpr) * mpr;
      for (MidplaneId s = first; s < first + mpr; ++s) {
        if (s != m && view.busy(s)) return false;
      }
    }
    return true;
  };

  for (MidplaneId m = 0; m < midplane_count; ++m) {
    double w = 0;
    switch (trigger.cls) {
      case TriggerClass::IdleHardware:
        w = footprint_idle(m) ? 1.0 : 0.0;
        break;
      case TriggerClass::Interrupting:
      case TriggerClass::Persistent:
        w = config_.base_location_weight;
        if (view.busy(m)) w += config_.busy_location_boost;
        w += config_.wide_boost_per_hour * view.wide_exposure_hours(m);
        break;
      case TriggerClass::Benign:
        w = config_.base_location_weight;
        if (view.busy(m)) w += config_.busy_location_boost + 1.0;
        // Network/power stress shows up as benign FATALs too, more weakly.
        w += 0.3 * config_.wide_boost_per_hour * view.wide_exposure_hours(m);
        break;
    }
    weights[static_cast<std::size_t>(m)] = w;
    total += w;
  }
  if (total <= 0) return std::nullopt;
  const auto mid = static_cast<MidplaneId>(rng_.categorical(weights));
  return machine_->location_on_midplane(info.loc_kind, mid, rng_);
}

Usec SystemFaultProcess::sample_repair_time() {
  const double mean_h = config_.repair_mean_hours;
  const double sigma = config_.repair_sigma;
  const double mu = std::log(mean_h) - sigma * sigma / 2.0;
  // Cap the lognormal tail: administrators escalate long outages, and an
  // uncapped tail makes one unlucky fault dominate a whole 237-day log.
  const double hours = std::min(rng_.lognormal(mu, sigma), 2.5 * mean_h);
  return static_cast<Usec>(hours * kUsecPerHour);
}

Usec SystemFaultProcess::sample_rehit_delay() {
  return static_cast<Usec>(rng_.exponential(config_.rehit_delay_mean_minutes) * kUsecPerMin);
}

}  // namespace coral::fault
