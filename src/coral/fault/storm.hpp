#pragma once

#include <optional>
#include <vector>

#include "coral/bgp/partition.hpp"
#include "coral/common/rng.hpp"
#include "coral/machine/model.hpp"
#include "coral/ras/event.hpp"

namespace coral::fault {

/// How a single ground-truth fault manifestation explodes into raw RAS
/// records (the redundancy the paper's filters must undo, §IV):
///   - temporal: the primary location re-reports within a short burst;
///   - spatial: an interrupt to a parallel job is reported from many of the
///     job's nodes (§VI-C);
///   - causal: correlated secondary errcodes fire at the same location
///     (the co-occurring sets of [7]).
struct StormConfig {
  double temporal_extra_mean = 5.0;  ///< extra same-location records (Poisson)
  Usec temporal_window = 150 * kUsecPerSec;
  double spatial_nodes_mean = 18.0;  ///< job nodes that report the interrupt
  int max_records_per_node = 3;
  double cascade_prob = 0.35;        ///< chance of a secondary-errcode burst
  double cascade_extra_mean = 2.5;
  double idle_extra_mean = 7.0;      ///< extra records for idle-hardware faults
};

/// One ground-truth fault manifestation to expand into records.
struct Manifestation {
  TimePoint time;
  ras::ErrcodeId code = 0;
  bgp::Location location;                      ///< primary report location
  std::optional<bgp::Partition> job_partition; ///< set when a job was hit
  std::int32_t truth_tag = -1;                 ///< ground-truth fault instance id
};

/// A raw record plus its ground-truth tag.
struct TaggedEvent {
  ras::RasEvent event;
  std::int32_t truth_tag = -1;
};

/// Expands manifestations into raw RAS records.
class StormModel {
 public:
  explicit StormModel(const StormConfig& config,
                      const ras::Catalog& catalog = ras::default_catalog(),
                      const machine::MachineModel& machine = machine::bgp_model());

  /// Append the records for `m` to `out`. All records carry `m.truth_tag`.
  void expand(const Manifestation& m, Rng& rng, std::vector<TaggedEvent>& out) const;

  /// The secondary errcode that a primary code drags along (the causal
  /// cascade), if any. Exposed so the causality filter's tests can assert
  /// against the ground truth.
  static std::optional<ras::ErrcodeId> cascade_partner(
      ras::ErrcodeId primary, const ras::Catalog& catalog = ras::default_catalog());

 private:
  StormConfig config_;
  const ras::Catalog* catalog_;
  const machine::MachineModel* machine_;
};

}  // namespace coral::fault
