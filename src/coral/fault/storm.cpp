#include "coral/fault/storm.hpp"

#include <algorithm>

#include "coral/fault/process.hpp"

namespace coral::fault {

using ras::Catalog;
using ras::ErrcodeId;
using ras::ErrcodeInfo;

StormModel::StormModel(const StormConfig& config, const Catalog& catalog,
                       const machine::MachineModel& machine)
    : config_(config), catalog_(&catalog), machine_(&machine) {}

std::optional<ErrcodeId> StormModel::cascade_partner(ErrcodeId primary,
                                                     const Catalog& c) {
  // Causally coupled pairs: a primary fatal drags a correlated secondary
  // fatal at the same location. Kept small and static — these are the
  // frequent co-occurring sets the causality filter mines.
  static const std::pair<const char*, const char*> kPairs[] = {
      {ras::codes::kRasStormFatal, "_bgp_err_kernel_panic"},
      {ras::codes::kDdrController, "_bgp_err_l3_ecc_fatal"},
      {"_bgp_err_tree_fatal", "_bgp_err_dma_fatal"},
      {ras::codes::kLinkCardError, "mmcs_control_conn_lost"},
      {ras::codes::kCiodHungProxy, "_bgp_err_fs_operation"},
  };
  const ErrcodeInfo& info = c.info(primary);
  for (const auto& [from, to] : kPairs) {
    if (info.name == from) return c.find(to);
  }
  return std::nullopt;
}

void StormModel::expand(const Manifestation& m, Rng& rng,
                        std::vector<TaggedEvent>& out) const {
  const Catalog& catalog = *catalog_;
  const ErrcodeInfo& info = catalog.info(m.code);

  const auto emit = [&](ras::ErrcodeId code, TimePoint t, const bgp::Location& loc) {
    TaggedEvent te;
    te.event.errcode = code;
    te.event.severity = catalog.info(code).severity;
    te.event.event_time = t;
    te.event.location = loc;
    te.event.serial = static_cast<std::uint32_t>(rng.next() & 0xFFFFFF);
    te.truth_tag = m.truth_tag;
    out.push_back(te);
  };

  const auto jitter = [&](double mean_fraction) {
    const double w = static_cast<double>(config_.temporal_window);
    return static_cast<Usec>(rng.uniform(0.0, w * mean_fraction));
  };

  // Primary record at the manifestation time.
  emit(m.code, m.time, m.location);

  // Temporal redundancy at the primary location.
  const double extra_mean =
      m.job_partition ? config_.temporal_extra_mean : config_.idle_extra_mean;
  const auto n_temporal = rng.poisson(extra_mean);
  for (std::uint64_t i = 0; i < n_temporal; ++i) {
    emit(m.code, m.time + jitter(1.0), m.location);
  }

  // Spatial fan-out: a parallel job's interrupt is reported from many of
  // its nodes.
  if (m.job_partition) {
    const auto n_nodes = rng.poisson(config_.spatial_nodes_mean);
    const auto midplanes = m.job_partition->midplanes();
    for (std::uint64_t i = 0; i < n_nodes; ++i) {
      const bgp::MidplaneId mid =
          midplanes[rng.uniform_index(midplanes.size())];
      const bgp::Location node = machine_->location_on_midplane(info.loc_kind, mid, rng);
      const auto reps = 1 + rng.uniform_index(
                                static_cast<std::uint64_t>(config_.max_records_per_node));
      for (std::uint64_t r = 0; r < reps; ++r) {
        emit(m.code, m.time + jitter(1.0), node);
      }
    }
  }

  // Causal cascade: a correlated secondary errcode at the same location,
  // slightly later.
  if (const auto partner = cascade_partner(m.code, catalog);
      partner && rng.uniform() < config_.cascade_prob) {
    const auto n_cascade = 1 + rng.poisson(config_.cascade_extra_mean);
    const Usec offset = 2 * kUsecPerSec + jitter(0.2);
    for (std::uint64_t i = 0; i < n_cascade; ++i) {
      emit(*partner, m.time + offset + jitter(0.5), m.location);
    }
  }
}

}  // namespace coral::fault
