#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "coral/bgp/partition.hpp"
#include "coral/common/rng.hpp"
#include "coral/common/time.hpp"
#include "coral/machine/model.hpp"
#include "coral/ras/catalog.hpp"

namespace coral::fault {

/// Ground-truth system fault behaviour knobs. Rates are machine-wide
/// triggers per day in the normal state.
struct FaultConfig {
  double interrupting_rate_per_day = 0.55;  ///< one-shot interrupting system faults
  double persistent_rate_per_day = 0.07;    ///< repair-needed system faults (§IV-B)
  double idle_rate_per_day = 1.05;          ///< faults on idle hardware (§IV-A)
  double benign_rate_per_day = 0.50;        ///< FATAL-severity non-impacting faults

  /// Markov-modulated "degraded period" that clusters failures in time
  /// (produces the Weibull shape < 1 the paper observes).
  double degraded_multiplier = 7.0;
  double mean_days_between_degraded = 10.0;
  double degraded_mean_hours = 8.0;

  /// Location-choice coupling (§V-B, Observation 5): the weight added per
  /// hour of recent wide-job (>= 32 midplanes) exposure on a midplane.
  double wide_boost_per_hour = 0.5;
  /// Extra exposure-hours credited while a wide job is running right now.
  double wide_running_bonus_hours = 6.0;
  /// Residual wear decay constant: a midplane's accumulated wide-job
  /// exposure decays as exp(-dt/tau). Wide runs stress clock/link/power
  /// domains and the latent fault often fires later; this is what
  /// concentrates Fig. 4a's failure counts in the wide-job region even
  /// though wide jobs occupy it only a fraction of the time.
  double wide_wear_tau_hours = 72.0;
  /// Busy (any job) midplanes attract a milder boost.
  double busy_location_boost = 0.35;
  /// Baseline weight of an arbitrary midplane.
  double base_location_weight = 0.25;

  /// Persistent-fault repair time: lognormal, parameterized by the mean (h)
  /// and sigma of the underlying normal.
  double repair_mean_hours = 3.0;
  double repair_sigma = 0.5;
  /// Delay after a job starts atop an unrepaired persistent fault before the
  /// fault re-manifests and kills it.
  double rehit_delay_mean_minutes = 8.0;

  /// Linear drift of all trigger-class rates over simulated time: rates are
  /// scaled by (1 + rate_drift_per_year * years) where years counts from the
  /// first next() call (clamped at 0). Positive values model aging hardware,
  /// negative values a burn-in period. 0 (the default) leaves the process —
  /// including its RNG stream — bit-identical to the drift-free one.
  double rate_drift_per_year = 0.0;
};

/// The class of a system fault trigger, used to pick the errcode family.
enum class TriggerClass { Interrupting, Persistent, IdleHardware, Benign };

/// A ground-truth fault trigger produced by the process.
struct Trigger {
  TimePoint time;
  TriggerClass cls = TriggerClass::Interrupting;
  ras::ErrcodeId code = 0;
};

/// What the fault process needs to know about current machine occupancy.
struct OccupancyView {
  std::function<bool(bgp::MidplaneId)> busy;  ///< any job on this midplane?
  /// Recent wide-job (>= 32 midplanes) exposure of this midplane, in
  /// decayed hours (plus the running bonus when a wide job is on it now).
  std::function<double(bgp::MidplaneId)> wide_exposure_hours;
};

/// Generates system-fault triggers over time: a Markov-modulated Poisson
/// process (normal/degraded states) for each trigger class, with errcodes
/// drawn by catalog weight within the class. Location choice is a separate
/// step because it depends on machine occupancy at the trigger time.
class SystemFaultProcess {
 public:
  SystemFaultProcess(const FaultConfig& config, Rng rng,
                     const ras::Catalog& catalog = ras::default_catalog(),
                     const machine::MachineModel& machine = machine::bgp_model());

  /// The machine whose midplanes locations are drawn over.
  const machine::MachineModel& machine() const { return *machine_; }

  /// Next trigger strictly after `now`, or nullopt if it falls past `end`.
  std::optional<Trigger> next(TimePoint now, TimePoint end);

  /// The rate multiplier in effect at time t (advances the Markov state).
  double state_multiplier(TimePoint t);

  /// Pick a concrete location for a trigger.
  /// - IdleHardware triggers require a fully idle footprint; nullopt when
  ///   the machine is too busy (the trigger is then dropped).
  /// - Interrupting/Persistent triggers are attracted to wide-job midplanes.
  /// - Benign triggers are attracted to busy midplanes.
  std::optional<bgp::Location> choose_location(const Trigger& trigger,
                                               const OccupancyView& view);

  /// Sample a repair duration for a persistent fault.
  Usec sample_repair_time();

  /// Sample the delay before a persistent fault kills a newly started job.
  Usec sample_rehit_delay();

  Rng& rng() { return rng_; }

 private:
  double class_rate_per_usec(TriggerClass cls) const;
  double drift_factor(TimePoint t) const;
  ras::ErrcodeId pick_code(TriggerClass cls);

  FaultConfig config_;
  Rng rng_;
  const ras::Catalog* catalog_;
  const machine::MachineModel* machine_;
  // Degraded-state machine.
  bool degraded_ = false;
  TimePoint state_until_;
  // Rate-drift origin: pinned to `now` of the first next() call.
  TimePoint drift_origin_;
  bool drift_origin_set_ = false;
  // Per-class code samplers.
  std::vector<ras::ErrcodeId> class_codes_[4];
  DiscreteSampler class_samplers_[4];
};

/// Build a concrete Location of the catalog's loc_kind on a given midplane
/// (random card/slot positions) on the reference BG/P machine. Shared with
/// the application-error path; model-aware callers should use
/// MachineModel::location_on_midplane instead.
bgp::Location location_on_midplane(bgp::LocationKind kind, bgp::MidplaneId mid, Rng& rng);

}  // namespace coral::fault
