// Regenerates Fig. 3: empirical CDFs of fatal-event interarrival times
// (a) with and (b) without job-related redundant records, with the fitted
// Weibull and exponential CDFs alongside.
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/stats/ecdf.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

void print_cdf(const char* title, const coral::core::InterarrivalFit& fit) {
  using namespace coral;
  std::printf("\n%s (n=%zu)\n", title, fit.samples_sec.size());
  std::printf("%14s %10s %10s %10s\n", "interarrival_s", "empirical", "weibull", "expon");
  const stats::EmpiricalCdf ecdf(fit.samples_sec);
  for (const auto& [x, p] : ecdf.points(24)) {
    std::printf("%14.1f %10.4f %10.4f %10.4f\n", x, p, fit.weibull.cdf(x),
                fit.exponential.cdf(x));
  }
  std::printf("KS distance: weibull=%.4f exponential=%.4f -> %s fits better\n",
              fit.ks_weibull, fit.ks_exponential,
              fit.ks_weibull < fit.ks_exponential ? "Weibull" : "exponential");
}

}  // namespace

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Fig. 3: empirical CDF of fatal-event interarrival times\n");
  print_cdf("(a) with job-related redundant records", r.fatal_before_jobfilter);
  print_cdf("(b) without job-related redundant records", r.fatal_after_jobfilter);
  std::printf("\nPaper shape: Weibull beats exponential in both panels, and the two\n"
              "curves differ materially (job-related filtering matters).\n");
  return 0;
}
