// Machines x scenarios x engines matrix over the pluggable MachineModel
// layer: every registered machine (bgp, bgq) runs every calibrated scenario
// pack (plus the unmodified base calibration) through both co-analysis
// engines (batch and streaming).
//
// Self-main rather than google-benchmark: the matrix is the product, not a
// flat bench list, and the same binary doubles as the CI smoke runner.
//
//   $ ./perf_scenarios [--smoke] [seed] [days] [reps]
//
// Default mode measures each cell (best-of-`reps` wall clock, generation
// excluded) and emits one JSON object on stdout. --smoke runs one fast
// config per cell (short horizon, single rep), checks the result is sane,
// and prints a pass/fail line per cell — this is the tier-1-budget scenario
// smoke stage wired into scripts/ci.sh.
//
// Every cell overrides the pack's own horizon (multi_year_drift declares
// 730 days) with the matrix horizon, so cells are comparable and the smoke
// stage stays fast; the drift knob still acts, just over a shorter window.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "coral/core/pipeline.hpp"
#include "coral/machine/model.hpp"
#include "coral/synth/packs.hpp"

namespace {

using namespace coral;

struct Cell {
  std::string machine;
  std::string scenario;
  const char* engine = "batch";
  double seconds = 0;
  std::size_t ras_records = 0;
  std::size_t jobs = 0;
  std::size_t groups = 0;
  std::size_t interruptions = 0;
};

template <typename Fn>
double best_seconds(Fn&& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// A smoke cell must look like a real co-analysis, not just not-crash: the
// generator produced a log pair, filtering compressed it into groups, and
// the result is dimensioned for the machine that produced it.
bool sane(const Cell& cell, const core::CoAnalysisResult& r,
          const machine::MachineModel& machine) {
  if (cell.ras_records == 0 || cell.jobs == 0 || cell.groups == 0) return false;
  if (&r.machine() != &machine) return false;
  return r.fatal_events_per_midplane.size() ==
         static_cast<std::size_t>(machine.midplane_count());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  const auto seed = static_cast<std::uint64_t>(pos.size() > 0 ? std::atoll(pos[0]) : 42);
  const int days = pos.size() > 1 ? std::atoi(pos[1]) : (smoke ? 7 : 14);
  const int reps = smoke ? 1 : (pos.size() > 2 ? std::atoi(pos[2]) : 3);

  std::vector<std::string> scenarios = {"base"};
  for (const auto& pack : synth::scenario_packs()) scenarios.emplace_back(pack.name);

  std::vector<Cell> cells;
  bool ok = true;
  for (const machine::MachineModel* machine : machine::all_models()) {
    for (const std::string& scenario : scenarios) {
      synth::ScenarioConfig config =
          scenario == "base" ? synth::base_scenario(*machine, seed, days)
                             : synth::pack_scenario(*machine, scenario, seed, days);
      config.days = days;  // comparable cells; see header comment
      const synth::SynthResult data = synth::generate(config);
      for (const char* engine : {"batch", "streaming"}) {
        Cell cell;
        cell.machine = std::string(machine->name());
        cell.scenario = scenario;
        cell.engine = engine;
        cell.ras_records = data.ras.size();
        cell.jobs = data.jobs.size();
        core::CoAnalysisConfig cfg;
        cfg.execution.engine = std::strcmp(engine, "batch") == 0
                                   ? core::Engine::Batch
                                   : core::Engine::Streaming;
        core::CoAnalysisResult result;
        cell.seconds = best_seconds(
            [&] { result = core::run_coanalysis(data.ras, data.jobs, cfg); }, reps);
        cell.groups = result.filtered.groups.size();
        cell.interruptions = result.matches.interruptions.size();
        if (smoke) {
          const bool pass = sane(cell, result, *machine);
          ok = ok && pass;
          std::printf("[%s] %s/%s/%s: ras=%zu jobs=%zu groups=%zu intr=%zu (%.0f ms)\n",
                      pass ? "ok" : "FAIL", cell.machine.c_str(), cell.scenario.c_str(),
                      engine, cell.ras_records, cell.jobs, cell.groups,
                      cell.interruptions, cell.seconds * 1e3);
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  if (smoke) {
    std::printf("%zu scenario-matrix cells %s\n", cells.size(),
                ok ? "passed" : "FAILED");
    return ok ? 0 : 1;
  }

  std::printf("{\n  \"seed\": %llu,\n  \"days\": %d,\n  \"cells\": [\n",
              static_cast<unsigned long long>(seed), days);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::printf("    {\"machine\": \"%s\", \"scenario\": \"%s\", \"engine\": \"%s\", "
                "\"seconds\": %.6f, \"ras_records\": %zu, \"jobs\": %zu, "
                "\"groups\": %zu, \"interruptions\": %zu}%s\n",
                c.machine.c_str(), c.scenario.c_str(), c.engine, c.seconds,
                c.ras_records, c.jobs, c.groups, c.interruptions,
                i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
