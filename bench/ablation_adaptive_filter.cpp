// Baseline comparison: the constant-threshold temporal filter of [12]/[9]
// (this repo's default) against the adaptive per-errcode filter in the
// spirit of Liang et al. [4], scored against generator ground truth.
#include <cstdio>
#include <set>

#include "coral/filter/adaptive.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

std::size_t pipeline_after(std::vector<filter::EventGroup> groups,
                           std::span<const ras::RasEvent> events) {
  // Finish with the standard spatial + causality stages so the comparison
  // isolates the temporal stage.
  groups = filter::spatial_filter(events, std::move(groups), {});
  const auto pairs = filter::mine_causal_pairs(events, groups, {});
  groups = filter::causality_filter(events, std::move(groups), pairs, {});
  return groups.size();
}

}  // namespace

int main() {
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const auto events = data.ras.fatal_events();
  std::size_t truth = 0;
  for (const auto& f : data.truth.faults) truth += f.redundant_of < 0 ? 1 : 0;
  std::printf("%zu raw FATAL records; %zu independent ground-truth faults\n\n",
              events.size(), truth);

  std::printf("%-28s %10s %14s\n", "temporal stage", "after-temp", "after-pipeline");
  for (const Usec t : {60L * kUsecPerSec, 300L * kUsecPerSec, 1800L * kUsecPerSec}) {
    auto groups = filter::temporal_filter(events, filter::singleton_groups(events.size()),
                                          {.threshold = t});
    const std::size_t after_temporal = groups.size();
    const std::size_t final_count = pipeline_after(std::move(groups), events);
    std::printf("constant %-19lld %10zu %14zu\n",
                static_cast<long long>(t / kUsecPerSec), after_temporal, final_count);
  }

  const auto thresholds = filter::learn_adaptive_thresholds(events, {});
  auto groups = filter::adaptive_temporal_filter(
      events, filter::singleton_groups(events.size()), thresholds);
  const std::size_t after_temporal = groups.size();
  const std::size_t final_count = pipeline_after(std::move(groups), events);
  std::printf("%-28s %10zu %14zu\n", "adaptive (per-errcode knee)", after_temporal,
              final_count);

  std::printf("\nLearned thresholds for %zu of %zu fatal errcodes (others fall back "
              "to 300 s):\n",
              thresholds.by_code.size(), ras::Catalog::instance().fatal_ids().size());
  int shown = 0;
  for (const auto& [code, t] : thresholds.by_code) {
    if (++shown > 10) break;
    std::printf("  %-34s %6lld s\n", ras::Catalog::instance().info(code).name.c_str(),
                static_cast<long long>(t / kUsecPerSec));
  }
  std::printf("\nReading: the adaptive filter lands near the constant-300 s result\n"
              "without hand-picking the constant — the paper's justification for\n"
              "using the simpler filter plus job-related post-processing.\n");
  return 0;
}
