// Regenerates Fig. 6: empirical CDFs of job-interruption interarrival times
// (a) due to system failures and (b) due to application errors, with fitted
// Weibull and exponential curves.
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/stats/ecdf.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

void print_cdf(const char* title, const coral::core::InterarrivalFit& fit) {
  using namespace coral;
  std::printf("\n%s (n=%zu)\n", title, fit.samples_sec.size());
  std::printf("%14s %10s %10s %10s\n", "interarrival_s", "empirical", "weibull", "expon");
  const stats::EmpiricalCdf ecdf(fit.samples_sec);
  for (const auto& [x, p] : ecdf.points(24)) {
    std::printf("%14.1f %10.4f %10.4f %10.4f\n", x, p, fit.weibull.cdf(x),
                fit.exponential.cdf(x));
  }
  std::printf("KS: weibull=%.4f exponential=%.4f; LRT p=%.2e -> %s\n", fit.ks_weibull,
              fit.ks_exponential, fit.lrt.p_value,
              fit.lrt.weibull_preferred ? "Weibull" : "exponential");
}

}  // namespace

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Fig. 6: empirical CDF of interruption interarrival times\n");
  print_cdf("(a) interruptions due to system failures", r.interruptions_system);
  print_cdf("(b) interruptions due to application errors", r.interruptions_application);
  std::printf("\nShape check: Weibull beats exponential in both panels (§VI-B).\n");
  return 0;
}
