// Ablation: the causality-related filter stage [7] on vs off, and its
// support threshold swept. Shows what the stage buys on top of
// temporal-spatial filtering (merging cascade partners like
// L1-parity -> kernel-panic into one event).
#include <cstdio>

#include "coral/fault/storm.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));

  filter::FilterPipelineConfig off;
  off.enable_causality = false;
  const auto base = filter::run_filter_pipeline(data.ras, off);
  std::printf("temporal+spatial only: %zu groups (truth: %zu instances)\n\n",
              base.groups.size(), data.truth.faults.size());

  std::printf("%12s %10s %12s\n", "min_support", "groups", "mined_pairs");
  for (int support : {2, 3, 5, 10, 20, 50}) {
    filter::FilterPipelineConfig config;
    config.causality.min_support = support;
    const auto result = filter::run_filter_pipeline(data.ras, config);
    std::printf("%12d %10zu %12zu\n", support, result.groups.size(),
                result.causal_pairs.size());
  }

  std::printf("\nGround-truth cascade pairs built into the storm model:\n");
  const ras::Catalog& cat = ras::Catalog::instance();
  for (ras::ErrcodeId id : cat.fatal_ids()) {
    if (const auto partner = fault::StormModel::cascade_partner(id)) {
      std::printf("  %-32s -> %s\n", cat.info(id).name.c_str(),
                  cat.info(*partner).name.c_str());
    }
  }
  std::printf("\nExpected shape: low support mines spurious pairs and over-merges;\n"
              "high support mines nothing and the stage becomes a no-op.\n");
  return 0;
}
