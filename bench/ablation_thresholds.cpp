// Ablation: sweep the temporal/spatial filter thresholds and the RAS↔job
// matching window against ground truth. Scores:
//   - event recovery: |filtered groups| vs true fault-instance count,
//   - interruption detection precision/recall vs the generator's truth.
// Justifies the 300 s / 300 s / 120 s defaults (DESIGN.md decisions 1–2).
#include <cstdio>
#include <set>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

struct Score {
  std::size_t groups = 0;
  double precision = 0;
  double recall = 0;
};

Score score(const synth::SynthResult& data, Usec temporal, Usec spatial, Usec window) {
  core::CoAnalysisConfig config;
  config.filters.temporal.threshold = temporal;
  config.filters.spatial.threshold = spatial;
  config.matching.window = window;

  const auto filtered = filter::run_filter_pipeline(data.ras, config.filters);
  const auto matches = core::match_interruptions(filtered, data.jobs, config.matching);

  std::set<std::int64_t> truth_jobs;
  for (const auto& i : data.truth.interruptions) truth_jobs.insert(i.job_id);
  std::size_t hit = 0;
  for (const auto& i : matches.interruptions) {
    if (truth_jobs.count(data.jobs[i.job].job_id)) ++hit;
  }
  Score s;
  s.groups = filtered.groups.size();
  s.precision = matches.interruptions.empty()
                    ? 0.0
                    : static_cast<double>(hit) /
                          static_cast<double>(matches.interruptions.size());
  s.recall = truth_jobs.empty()
                 ? 0.0
                 : static_cast<double>(hit) / static_cast<double>(truth_jobs.size());
  return s;
}

}  // namespace

int main() {
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  std::printf("Ground truth: %zu fault instances, %zu interrupted jobs\n\n",
              data.truth.faults.size(), data.truth.interruptions.size());

  std::printf("Sweep 1: temporal = spatial threshold (matching window fixed 120 s)\n");
  std::printf("%12s %10s %10s %10s\n", "threshold_s", "groups", "precision", "recall");
  for (Usec t : {30L, 60L, 120L, 300L, 600L, 1800L, 3600L}) {
    const Score s = score(data, t * kUsecPerSec, t * kUsecPerSec, 120 * kUsecPerSec);
    std::printf("%12ld %10zu %10.3f %10.3f\n", t, s.groups, s.precision, s.recall);
  }

  std::printf("\nSweep 2: matching window (thresholds fixed 300 s)\n");
  std::printf("%12s %10s %10s %10s\n", "window_s", "groups", "precision", "recall");
  for (Usec w : {15L, 30L, 60L, 120L, 300L, 900L, 3600L}) {
    const Score s = score(data, 300 * kUsecPerSec, 300 * kUsecPerSec, w * kUsecPerSec);
    std::printf("%12ld %10zu %10.3f %10.3f\n", w, s.groups, s.precision, s.recall);
  }

  std::printf("\nExpected shape: tiny thresholds leave storms unmerged (groups >> truth);\n"
              "huge thresholds over-merge (groups << truth). Small windows lose matches\n"
              "(recall drops); large windows admit coincidences (precision drops).\n");
  return 0;
}
