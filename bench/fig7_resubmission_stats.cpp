// Regenerates Fig. 7: probability that a resubmitted job is interrupted
// again, given k consecutive prior interruptions, per interruption category
// (Observation 9). The paper's shapes: category 1 (system) peaks at k=2
// (~53%); category 2 (application) increases monotonically to ~60%.
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Fig. 7: interruption probability of resubmitted jobs\n\n");
  const char* names[2] = {"category 1 (system failures)", "category 2 (application errors)"};
  const double paper[2][3] = {{0.35, 0.53, 0.40}, {0.40, 0.50, 0.60}};
  for (int cat = 0; cat < 2; ++cat) {
    std::printf("%s\n", names[cat]);
    const auto& rs = r.vulnerability.resubmission[cat];
    for (int k = 1; k <= 3; ++k) {
      const auto& p = rs.by_k[static_cast<std::size_t>(k - 1)];
      const int bar = static_cast<int>(p.probability() * 50 + 0.5);
      std::printf("  k=%d  P=%5.1f%%  (%zu/%zu)  [paper ~%2.0f%%] |%.*s\n", k,
                  100.0 * p.probability(), p.interrupted, p.resubmissions,
                  100.0 * paper[cat][k - 1], bar,
                  "##################################################");
    }
  }
  std::printf("\nCoverage: %.1f%% of interruptions are NOT covered by k>=2 history\n"
              "[paper: 83.77%%] — why §VI-D falls back to feature-based analysis.\n",
              100.0 * r.vulnerability.resubmission[0].uncovered_at_k2);
  return 0;
}
