// Ablation (§VII recommendation 1): what are *location awareness* and
// *interruption-relatedness* worth to a failure predictor? Replays the
// full-scale log and scores the four combinations, across horizons.
#include <cstdio>

#include "coral/core/prediction.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);
  std::printf("Predictor replay on %zu filtered fatal events, %zu interruptions\n\n",
              r.filtered.groups.size(), r.interruption_count());

  std::printf("%10s %10s %14s %10s %8s %8s %16s\n", "horizon_h", "location", "identification",
              "alarms", "prec", "recall", "disturbed_nh");
  for (const double hours : {1.0, 4.0, 12.0}) {
    for (const bool use_location : {true, false}) {
      for (const bool use_ident : {true, false}) {
        core::PredictorConfig config;
        config.horizon = static_cast<Usec>(hours * kUsecPerHour);
        config.use_location = use_location;
        config.use_identification = use_ident;
        const auto outcome = core::evaluate_predictor(r, data.jobs, config);
        std::printf("%10.0f %10s %14s %10zu %8.3f %8.3f %16.0f\n", hours,
                    use_location ? "yes" : "no", use_ident ? "yes" : "no", outcome.alarms,
                    outcome.precision(), outcome.recall(), outcome.disturbed_node_hours);
      }
    }
  }
  std::printf("\nReading (paper Obs. 1/7): without location info every alarm disturbs\n"
              "the whole machine — orders of magnitude more node-hours for the same\n"
              "recall; dropping the identification step adds alarms for codes that\n"
              "never hurt a job.\n");
  return 0;
}
