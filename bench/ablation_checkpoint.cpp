// Ablation (§VII recommendation 2): checkpoint policies driven by the
// co-analysis outputs, compared on total waste (lost work + overhead) over
// the full-scale log.
#include <cstdio>

#include "coral/core/checkpoint.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  const double mtti_h = r.interruptions_system.weibull.mean() / 3600.0;
  std::printf("Fitted system MTTI: %.1f h -> Young interval %.0f s (C = 5 min)\n\n",
              mtti_h,
              static_cast<double>(core::young_interval(5 * kUsecPerMin,
                                                       mtti_h * 3600.0)) /
                  kUsecPerSec);

  struct Row {
    const char* name;
    core::CheckpointPlan plan;
  };
  const Row rows[] = {
      {"no checkpointing", {core::CheckpointMode::None, 0, 5 * kUsecPerMin}},
      {"fixed 15 min", {core::CheckpointMode::FixedInterval, 15 * kUsecPerMin, 5 * kUsecPerMin}},
      {"fixed 1 h", {core::CheckpointMode::FixedInterval, kUsecPerHour, 5 * kUsecPerMin}},
      {"fixed 6 h", {core::CheckpointMode::FixedInterval, 6 * kUsecPerHour, 5 * kUsecPerMin}},
      {"Young (MTTI)", {core::CheckpointMode::YoungFromMtti, 0, 5 * kUsecPerMin}},
      {"Young + skip 1st hour",
       {core::CheckpointMode::YoungSkipFirstHour, 0, 5 * kUsecPerMin}},
  };

  std::printf("%-22s %14s %14s %14s %12s %10s\n", "policy", "lost_nh", "overhead_nh",
              "total_waste", "checkpoints", "skipped");
  for (const Row& row : rows) {
    const auto outcome = core::simulate_checkpointing(r, data.jobs, row.plan);
    std::printf("%-22s %14.0f %14.0f %14.0f %12zu %10zu\n", row.name,
                outcome.lost_node_hours, outcome.overhead_node_hours,
                outcome.total_waste(), outcome.checkpoints,
                outcome.skipped_first_hour_jobs);
  }
  std::printf("\nExpected shape: over-frequent checkpointing is overhead-bound, rare\n"
              "checkpointing is loss-bound; Young's interval from the *interruption*\n"
              "distribution sits near the minimum, and the Obs.-11 first-hour rule\n"
              "trims overhead without adding losses.\n");
  return 0;
}
