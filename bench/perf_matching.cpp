// Microbenchmarks for generation and the co-analysis core on the
// full-scale log pair.
#include <benchmark/benchmark.h>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::intrepid_scenario(42));
  return result;
}

const filter::FilterPipelineResult& filtered() {
  static const filter::FilterPipelineResult result =
      filter::run_filter_pipeline(data().ras, {});
  return result;
}

void BM_GenerateSmallScenario(benchmark::State& state) {
  // Fixed seed: generation cost varies noticeably across seeds (different
  // workload/fault draws), so a seed-per-iteration loop made the reported
  // mean a function of how many iterations the harness happened to run.
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::generate(synth::small_scenario(1)));
  }
}
// MinTime pinned above the CI-wide --benchmark_min_time=0.1: at ~180 ms per
// iteration that flag yields a single cold iteration (allocator + page
// faults included), which reads ~60% high and trips the regression gate.
BENCHMARK(BM_GenerateSmallScenario)->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_MatchInterruptions(benchmark::State& state) {
  (void)filtered();  // build log + filter outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::match_interruptions(filtered(), data().jobs, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(filtered().groups.size()));
}
BENCHMARK(BM_MatchInterruptions);

void BM_JobRunningAtQuery(benchmark::State& state) {
  // A single fixed query sits below the 4-decimal-ms resolution of the
  // committed bench trajectory (it recorded as 0.0), and a loop-invariant
  // call invites hoisting. Batch a sweep of query times per iteration and
  // consume every result, reporting per-batch time.
  const auto& jobs = data().jobs;
  const bgp::Location loc = bgp::Location::parse("R10-M0-N04");
  const TimePoint base = TimePoint::from_calendar(2009, 3, 1);
  constexpr int kQueries = 4096;
  for (auto _ : state) {
    std::size_t running = 0;
    for (int q = 0; q < kQueries; ++q) {
      const TimePoint t = base + static_cast<Usec>(q) * (kUsecPerHour / 2);
      const std::vector<std::size_t> hits = jobs.running_at(t, loc);
      benchmark::DoNotOptimize(hits.data());
      running += hits.size();
    }
    benchmark::DoNotOptimize(running);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kQueries);
}
BENCHMARK(BM_JobRunningAtQuery)->Unit(benchmark::kMillisecond);

void BM_FullCoAnalysis(benchmark::State& state) {
  (void)data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_coanalysis(data().ras, data().jobs));
  }
}
BENCHMARK(BM_FullCoAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
