// Microbenchmarks for generation and the co-analysis core on the
// full-scale log pair.
#include <benchmark/benchmark.h>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::intrepid_scenario(42));
  return result;
}

const filter::FilterPipelineResult& filtered() {
  static const filter::FilterPipelineResult result =
      filter::run_filter_pipeline(data().ras, {});
  return result;
}

void BM_GenerateSmallScenario(benchmark::State& state) {
  // Fixed seed: generation cost varies noticeably across seeds (different
  // workload/fault draws), so a seed-per-iteration loop made the reported
  // mean a function of how many iterations the harness happened to run.
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::generate(synth::small_scenario(1)));
  }
}
// MinTime pinned above the CI-wide --benchmark_min_time=0.1: at ~180 ms per
// iteration that flag yields a single cold iteration (allocator + page
// faults included), which reads ~60% high and trips the regression gate.
BENCHMARK(BM_GenerateSmallScenario)->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_MatchInterruptions(benchmark::State& state) {
  (void)filtered();  // build log + filter outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::match_interruptions(filtered(), data().jobs, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(filtered().groups.size()));
}
BENCHMARK(BM_MatchInterruptions);

void BM_JobRunningAtQuery(benchmark::State& state) {
  const auto& jobs = data().jobs;
  const TimePoint mid = TimePoint::from_calendar(2009, 5, 1);
  const bgp::Location loc = bgp::Location::parse("R10-M0-N04");
  for (auto _ : state) {
    benchmark::DoNotOptimize(jobs.running_at(mid, loc));
  }
}
BENCHMARK(BM_JobRunningAtQuery);

void BM_FullCoAnalysis(benchmark::State& state) {
  (void)data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_coanalysis(data().ras, data().jobs));
  }
}
BENCHMARK(BM_FullCoAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
