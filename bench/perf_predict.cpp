// Prediction hot paths on the full-scale Intrepid scenario: offline rule
// mining over the filtered fatal groups, and the per-record cost of the
// online predictor (the price the streaming session pays per RAS event).
#include <benchmark/benchmark.h>

#include "coral/core/pipeline.hpp"
#include "coral/predict/miner.hpp"
#include "coral/predict/predictor.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::intrepid_scenario(42));
  return result;
}

const core::CoAnalysisResult& analysis() {
  static const core::CoAnalysisResult result =
      core::run_coanalysis(data().ras, data().jobs);
  return result;
}

const core::CharColumns& char_columns() {
  static const core::CharColumns result = core::build_char_columns(
      analysis().filtered, analysis().matches, data().jobs);
  return result;
}

const predict::RuleTable& rules() {
  static const predict::RuleTable table = predict::mine_rules(
      char_columns(), analysis().identification, ras::default_catalog());
  return table;
}

void BM_MineRules(benchmark::State& state) {
  (void)char_columns();
  std::size_t mined = 0;
  for (auto _ : state) {
    const predict::RuleTable table = predict::mine_rules(
        char_columns(), analysis().identification, ras::default_catalog());
    mined = table.size();
    benchmark::DoNotOptimize(table.rules.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(char_columns().group_count()));
  state.counters["rules"] = static_cast<double>(mined);
}
BENCHMARK(BM_MineRules)->Unit(benchmark::kMillisecond);

void BM_PredictorStep(benchmark::State& state) {
  (void)rules();
  std::uint64_t issued = 0;
  for (auto _ : state) {
    predict::Predictor predictor(rules(), data().ras.machine());
    for (const ras::RasEvent& event : data().ras.events()) predictor.on_record(event);
    issued = predictor.issued();
    benchmark::DoNotOptimize(predictor.predictions().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
  state.counters["issued"] = static_cast<double>(issued);
}
BENCHMARK(BM_PredictorStep)->Unit(benchmark::kMillisecond);

}  // namespace
