// Regenerates Fig. 5: number of job interruptions per day — rare but bursty
// (Observation 6), including the burst statistics the paper quotes
// (re-interruptions shortly after a previous one; one failure killing a
// chain of jobs).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Fig. 5: interruptions per day (%zu days, %zu interruptions total)\n\n",
              r.interruptions_per_day.size(), r.interruption_count());
  for (std::size_t d = 0; d < r.interruptions_per_day.size(); ++d) {
    const int n = r.interruptions_per_day[d];
    if (n == 0) continue;  // the paper's plot is mostly zero; print active days
    std::printf("  day %3zu  %3d |%.*s\n", d, n, std::min(n, 60),
                "############################################################");
  }

  // Burst statistics (§VI-A prose).
  std::vector<Usec> gaps;
  for (std::size_t i = 1; i < r.matches.interruptions.size(); ++i) {
    gaps.push_back(r.matches.interruptions[i].time - r.matches.interruptions[i - 1].time);
  }
  const auto within = [&gaps](Usec limit) {
    return std::count_if(gaps.begin(), gaps.end(), [limit](Usec g) { return g <= limit; });
  };
  std::printf("\nBurst statistics:\n");
  std::printf("  interruptions within 1000 s of the previous one: %td  [paper: 33 jobs "
              "re-interrupted within 1000 s]\n",
              within(1000 * kUsecPerSec));
  std::printf("  interruptions within 1 hour of the previous one: %td\n",
              within(kUsecPerHour));

  // Longest kill-chain of one event group's errcode at one location.
  std::size_t max_chain = 0;
  for (const auto& jobs_of_group : r.matches.jobs_by_group) {
    max_chain = std::max(max_chain, jobs_of_group.size());
  }
  std::printf("  most jobs interrupted by a single independent event: %zu\n", max_chain);
  std::printf("\nShape check: interruptions are rare events arriving in bursts.\n");
  return 0;
}
