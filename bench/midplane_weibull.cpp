// Regenerates the §V-B midplane-level claim: "Weibull distribution still
// fits midplane-level failure interarrival distribution well" even though
// failure rates differ strongly across midplanes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "coral/core/midplane.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const auto filtered = filter::run_filter_pipeline(data.ras, {});
  const core::MidplaneFits fits = core::fit_midplane_interarrivals(filtered);

  std::printf("Midplane-level fatal-event interarrival fits (>= 12 events needed)\n\n");
  std::printf("fitted midplanes:        %zu of 80\n", fits.fitted_count);
  std::printf("Weibull preferred (LRT): %zu (%.0f%%)\n", fits.weibull_preferred_count,
              100.0 * fits.weibull_preferred_fraction());
  std::printf("shape < 1:               %zu\n\n", fits.shape_below_one_count);

  // The busiest midplanes, like the paper's 58/60/61 highlights.
  std::vector<std::pair<std::size_t, int>> by_count;
  for (int m = 0; m < bgp::Topology::kMidplanes; ++m) {
    const auto& fit = fits.fits[static_cast<std::size_t>(m)];
    if (fit) by_count.push_back({fit->samples_sec.size() + 1, m});
  }
  std::sort(by_count.rbegin(), by_count.rend());
  std::printf("%-10s %8s %8s %10s %12s %6s\n", "midplane", "events", "shape", "scale",
              "mean_s", "LRT");
  for (std::size_t i = 0; i < std::min<std::size_t>(12, by_count.size()); ++i) {
    const int m = by_count[i].second;
    const auto& fit = *fits.fits[static_cast<std::size_t>(m)];
    std::printf("%-10s %8zu %8.3f %10.0f %12.0f %6s %s\n",
                bgp::Location::midplane(m).to_string().c_str(), by_count[i].first,
                fit.weibull.shape(), fit.weibull.scale(), fit.weibull.mean(),
                fit.lrt.weibull_preferred ? "W" : "E",
                (m >= 32 && m < 64) ? "(wide region)" : "");
  }
  std::printf("\nShape check [paper §V-B]: Weibull fits hold per midplane, and the\n"
              "highest-count midplanes sit in the wide-job region (paper: 58, 61, 60).\n");
  return 0;
}
