// Regenerates Table IV: Weibull parameters and numerical characteristics of
// fatal-event interarrivals before and after job-related filtering, plus the
// likelihood-ratio test backing the "Weibull fits better" claim (§V-A).
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/stats/bootstrap.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Table IV: Weibull fits of fatal-event interarrival times\n");
  std::printf("%-28s %10s %12s %12s %14s\n", "", "Shape", "Scale", "Mean", "Variance");
  const auto row = [](const char* name, const core::InterarrivalFit& fit) {
    std::printf("%-28s %10.6f %12.1f %12.0f %14.4e\n", name, fit.weibull.shape(),
                fit.weibull.scale(), fit.weibull.mean(), fit.weibull.variance());
  };
  row("Before job-related filtering", r.fatal_before_jobfilter);
  row("After job-related filtering", r.fatal_after_jobfilter);
  std::printf("%-28s %10.6f %12.1f %12.0f %14.4e   [paper]\n", "  (paper before)", 0.387187,
              8116.7, 29585.0, 9.6348e9);
  std::printf("%-28s %10.6f %12.1f %12.0f %14.4e   [paper]\n", "  (paper after)", 0.572884,
              68465.9, 109718.0, 4.1818e10);

  std::printf("\nLikelihood-ratio test (Weibull vs exponential):\n");
  const auto lrt_row = [](const char* name, const core::InterarrivalFit& fit) {
    std::printf("  %-28s llW=%.1f llE=%.1f stat=%.1f p=%.3e -> %s\n", name,
                fit.lrt.ll_weibull, fit.lrt.ll_exponential, fit.lrt.statistic,
                fit.lrt.p_value, fit.lrt.weibull_preferred ? "Weibull" : "exponential");
  };
  lrt_row("before job-related", r.fatal_before_jobfilter);
  lrt_row("after job-related", r.fatal_after_jobfilter);

  std::printf("\nBootstrap 95%% CIs on the Weibull shape (percentile, 400 resamples):\n");
  const auto ci_before = stats::bootstrap_weibull_shape(r.fatal_before_jobfilter.samples_sec);
  const auto ci_after = stats::bootstrap_weibull_shape(r.fatal_after_jobfilter.samples_sec);
  std::printf("  before: %.3f [%.3f, %.3f]\n", ci_before.point, ci_before.lo, ci_before.hi);
  std::printf("  after:  %.3f [%.3f, %.3f]\n", ci_after.point, ci_after.lo, ci_after.hi);
  std::printf("  shape < 1 with 95%% confidence in both fits: %s\n",
              ci_before.hi < 1.0 && ci_after.hi < 1.0 ? "yes" : "no");

  std::printf("\nShape < 1 in both fits (decreasing hazard rate), and the fitted mean\n"
              "grows after job-related filtering — the paper's Observation 4.\n");
  return 0;
}
