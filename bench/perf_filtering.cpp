// Microbenchmarks for the filtering hot paths on the full-scale log
// (throughput of each stage and of the whole pipeline).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "coral/common/parallel.hpp"
#include "coral/filter/columns.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::intrepid_scenario(42));
  return result;
}

void BM_ExtractFatal(benchmark::State& state) {
  (void)data();  // build the log outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(data().ras.fatal_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_ExtractFatal);

// The columnar kernels the pipeline actually runs: spans over the SoA fatal
// view with CSR group sets, no per-iteration event gather.
void BM_TemporalFilterColumnar(benchmark::State& state) {
  const filter::EventColumns cols = filter::columns_of(data().ras.fatal_columns());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter::temporal_filter(cols, filter::GroupSet::singletons(cols.size()), {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cols.size()));
}
BENCHMARK(BM_TemporalFilterColumnar);

void BM_SpatialFilterColumnar(benchmark::State& state) {
  const filter::EventColumns cols = filter::columns_of(data().ras.fatal_columns());
  const filter::GroupSet pre =
      filter::temporal_filter(cols, filter::GroupSet::singletons(cols.size()), {});
  for (auto _ : state) {
    auto groups = pre;
    benchmark::DoNotOptimize(filter::spatial_filter(cols, std::move(groups), {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pre.size()));
}
BENCHMARK(BM_SpatialFilterColumnar);

void BM_TemporalFilter(benchmark::State& state) {
  const auto events = data().ras.fatal_events();
  for (auto _ : state) {
    auto groups = filter::singleton_groups(events.size());
    benchmark::DoNotOptimize(
        filter::temporal_filter(events, std::move(groups), {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_TemporalFilter);

void BM_SpatialFilter(benchmark::State& state) {
  const auto events = data().ras.fatal_events();
  const auto pre = filter::temporal_filter(events, filter::singleton_groups(events.size()), {});
  for (auto _ : state) {
    auto groups = pre;
    benchmark::DoNotOptimize(filter::spatial_filter(events, std::move(groups), {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pre.size()));
}
BENCHMARK(BM_SpatialFilter);

// Times the columnar causality kernel the pipeline actually runs: spans +
// CSR groups prepared once outside the loop. The previous incarnation of
// this bench called the AoS convenience wrapper, which re-gathers an
// OwnedColumns copy and rebuilds the CSR group set on every iteration —
// that gather dominated the measurement (~0.28 ms vs ~0.005 ms for the
// kernel itself) and is covered separately by BM_CausalityMiningGather.
void BM_CausalityMining(benchmark::State& state) {
  const filter::EventColumns cols = filter::columns_of(data().ras.fatal_columns());
  const filter::GroupSet groups = filter::spatial_filter(
      cols, filter::temporal_filter(cols, filter::GroupSet::singletons(cols.size()), {}),
      {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::mine_causal_pairs(cols, groups, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_CausalityMining);

// The AoS compatibility wrapper: pays the per-call OwnedColumns gather and
// GroupSet rebuild. Kept as its own series so the wrapper overhead stays
// tracked without polluting the kernel measurement above.
void BM_CausalityMiningGather(benchmark::State& state) {
  const auto events = data().ras.fatal_events();
  auto groups = filter::temporal_filter(events, filter::singleton_groups(events.size()), {});
  groups = filter::spatial_filter(events, std::move(groups), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::mine_causal_pairs(events, groups, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_CausalityMiningGather);

void BM_FullFilterPipeline(benchmark::State& state) {
  (void)data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::run_filter_pipeline(data().ras, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_FullFilterPipeline);

void BM_RasBinaryWrite(benchmark::State& state) {
  (void)data();
  for (auto _ : state) {
    std::ostringstream out;
    ras::write_binary(out, data().ras);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryWrite);

void BM_RasBinaryRead(benchmark::State& state) {
  std::ostringstream out;
  ras::write_binary(out, data().ras);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    benchmark::DoNotOptimize(ras::read_binary(in));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryRead);

void BM_RasBinaryReadParallel(benchmark::State& state) {
  std::ostringstream out;
  ras::write_binary(out, data().ras);
  const std::string bytes = out.str();
  par::ThreadPool pool;
  for (auto _ : state) {
    std::istringstream in(bytes);
    benchmark::DoNotOptimize(ras::read_binary(in, ras::default_catalog(),
                                              ParseMode::Strict, nullptr, nullptr, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryReadParallel);

void BM_RasBinaryWriteV3(benchmark::State& state) {
  (void)data();
  for (auto _ : state) {
    std::ostringstream out;
    ras::write_binary(out, data().ras, {});
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryWriteV3);

void BM_RasBinaryWriteV3Parallel(benchmark::State& state) {
  (void)data();
  par::ThreadPool pool;
  for (auto _ : state) {
    std::ostringstream out;
    ras::WriteOptions opts;
    opts.pool = &pool;
    ras::write_binary(out, data().ras, opts);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryWriteV3Parallel);

// Writes the v3 store to a temp file once; the read benches then measure
// the real full-file path (mmap zero-copy + parallel block decode), the
// same way a consumer opens an archive.
const std::string& v3_file() {
  static const std::string path = [] {
    std::string p =
        (std::filesystem::temp_directory_path() / "perf_filtering_ras.v3").string();
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    ras::write_binary(out, data().ras, {});
    return p;
  }();
  return path;
}

void BM_RasBinaryReadV3(benchmark::State& state) {
  const std::string& path = v3_file();  // synth + write outside the timed region
  par::ThreadPool pool;
  ras::ReadOptions opts;
  opts.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ras::read_binary_file(path, ras::default_catalog(), opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryReadV3);

void BM_RasBinaryReadV3Pushdown(benchmark::State& state) {
  // The paper's canonical slice: a 60-day window of the 237-day log. Zone
  // maps let the reader skip whole blocks of it without decoding.
  const std::string& path = v3_file();
  const synth::ScenarioConfig cfg = synth::intrepid_scenario(42);
  par::ThreadPool pool;
  ras::ReadOptions opts;
  opts.pool = &pool;
  opts.predicate.time_begin = cfg.start + 90 * kUsecPerDay;
  opts.predicate.time_end = cfg.start + 150 * kUsecPerDay;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ras::read_binary_file(path, ras::default_catalog(), opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_RasBinaryReadV3Pushdown);

}  // namespace
