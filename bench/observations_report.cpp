// Runs the full co-analysis pipeline on the calibrated 237-day synthetic
// Intrepid log pair and prints all 12 observations of the paper with the
// paper's reference values alongside.
#include <cstdio>

#include "coral/core/report.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;

  const synth::ScenarioConfig config = synth::intrepid_scenario(42);
  std::printf("Generating %d-day Intrepid log pair (seed %llu)...\n", config.days,
              static_cast<unsigned long long>(config.seed));
  const synth::SynthResult data = synth::generate(config);

  std::printf("Running co-analysis...\n\n");
  const core::CoAnalysisResult result = core::run_coanalysis(data.ras, data.jobs);

  std::fputs(core::render_filter_stages(result).c_str(), stdout);
  std::printf("\n%s\n%s\n%s\n%s\n\n",
              core::render_fit("fatal (before job-filter)", result.fatal_before_jobfilter)
                  .c_str(),
              core::render_fit("fatal (after job-filter)", result.fatal_after_jobfilter)
                  .c_str(),
              core::render_fit("interruptions (system)", result.interruptions_system)
                  .c_str(),
              core::render_fit("interruptions (application)",
                               result.interruptions_application)
                  .c_str());
  std::fputs(
      core::render_observations(result, data.ras.summary(), data.jobs.summary()).c_str(),
      stdout);
  return 0;
}
