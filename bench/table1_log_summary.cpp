// Regenerates Table I of the paper: summary of the RAS log and job log from
// the (synthetic) Intrepid machine, plus the §III-B prose counts the table's
// caption relies on (FATAL records, errcode/component types, distinct jobs).
#include <cstdio>

#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;

  const synth::ScenarioConfig config = synth::intrepid_scenario(42);
  std::printf("Generating %d days of Intrepid logs (seed %llu)...\n", config.days,
              static_cast<unsigned long long>(config.seed));
  const synth::SynthResult result = synth::generate(config);

  const ras::RasLogSummary rs = result.ras.summary();
  const joblog::JobLogSummary js = result.jobs.summary();

  std::printf("\nTable I: Summary of the RAS log and job log (paper values in [])\n");
  std::printf("%-8s %-6s %-12s %-12s %-14s\n", "Log", "Days", "Start", "End",
              "No. of Records");
  std::printf("%-8s %-6d %-12.10s %-12.10s %zu  [2,084,392]\n", "RAS", config.days,
              rs.first_time.to_display_string().c_str(),
              rs.last_time.to_display_string().c_str(), rs.total_records);
  std::printf("%-8s %-6d %-12.10s %-12.10s %zu  [68,794]\n", "Job", config.days,
              js.first_submit.to_display_string().c_str(),
              js.last_end.to_display_string().c_str(), js.total_jobs);

  std::printf("\nSection III-B prose counts:\n");
  std::printf("  FATAL records:            %zu  [33,370]\n", rs.fatal_records);
  std::printf("  FATAL errcode types:      %zu  [82]\n", rs.fatal_errcode_types);
  std::printf("  FATAL component types:    %zu  [6]\n", rs.fatal_component_types);
  std::printf("  distinct jobs:            %zu  [9,664]\n", js.distinct_jobs);
  std::printf("  resubmitted distinct:     %zu  [5,547]\n", js.resubmitted_jobs);
  std::printf("  users:                    %zu  [236]\n", js.users);
  std::printf("  projects:                 %zu  [91]\n", js.projects);

  std::printf("\nFATAL records by component (paper: ~75%% KERNEL):\n");
  for (const auto& [comp, n] : rs.fatal_by_component) {
    std::printf("  %-12s %8zu  (%.1f%%)\n", to_string(comp), n,
                100.0 * static_cast<double>(n) / static_cast<double>(rs.fatal_records));
  }

  std::printf("\nGround truth (generator side): %zu fault instances, %zu interruptions\n",
              result.truth.faults.size(), result.truth.interruptions.size());
  {
    const ras::Catalog& cat = ras::Catalog::instance();
    std::size_t idle = 0, benign = 0, persistent_orig = 0, rehits = 0, app = 0, oneshot = 0;
    for (const auto& f : result.truth.faults) {
      const auto& info = cat.info(f.code);
      if (f.redundant_of >= 0) {
        ++rehits;
      } else if (info.nature == ras::FaultNature::ApplicationError) {
        ++app;
      } else if (info.impact == ras::JobImpact::Benign) {
        ++benign;
      } else if (info.idle_bias) {
        ++idle;
      } else if (f.persistent) {
        ++persistent_orig;
      } else {
        ++oneshot;
      }
    }
    std::printf("  fault instances: idle=%zu benign=%zu oneshot=%zu persistent=%zu "
                "rehits=%zu app=%zu\n", idle, benign, oneshot, persistent_orig, rehits, app);
    std::size_t int_sys = 0, int_app = 0;
    for (const auto& i : result.truth.interruptions) {
      if (cat.info(i.code).nature == ras::FaultNature::ApplicationError) {
        ++int_app;
      } else {
        ++int_sys;
      }
    }
    std::printf("  interruptions: system=%zu [206]  application=%zu [102]\n", int_sys,
                int_app);
  }
  return 0;
}
