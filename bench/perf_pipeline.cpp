// End-to-end co-analysis benchmark on the full-scale Intrepid scenario:
// binary ingest -> filter -> match -> full methodology report, timed as one
// unit — the headline figure for the columnar hot path. Ingest reads from an
// in-memory image of the binary v2 logs, so the numbers measure decode and
// analysis, not disk.
#include <benchmark/benchmark.h>

#include <sstream>

#include "coral/common/parallel.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::intrepid_scenario(42));
  return result;
}

const std::string& ras_bytes() {
  static const std::string bytes = [] {
    std::ostringstream out;
    ras::write_binary(out, data().ras);
    return out.str();
  }();
  return bytes;
}

const std::string& job_bytes() {
  static const std::string bytes = [] {
    std::ostringstream out;
    joblog::write_binary(out, data().jobs);
    return out.str();
  }();
  return bytes;
}

void BM_EndToEndCoAnalysis(benchmark::State& state) {
  (void)ras_bytes();
  (void)job_bytes();
  par::ThreadPool pool;
  const Context ctx = Context{}.with_pool(&pool);
  std::size_t interruptions = 0;
  for (auto _ : state) {
    std::istringstream ras_in(ras_bytes());
    const ras::RasLog ras = ras::read_binary(ras_in, ras::default_catalog(),
                                             ParseMode::Strict, nullptr, nullptr, &pool);
    std::istringstream job_in(job_bytes());
    const joblog::JobLog jobs = joblog::read_binary(job_in);
    const core::CoAnalysisResult result = core::run_coanalysis(ras, jobs, {}, ctx);
    interruptions = result.interruption_count();
    benchmark::DoNotOptimize(result.matches.interruptions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
  state.counters["interruptions"] = static_cast<double>(interruptions);
}
BENCHMARK(BM_EndToEndCoAnalysis)->Unit(benchmark::kMillisecond);

void BM_EndToEndBatchEngine(benchmark::State& state) {
  (void)ras_bytes();
  (void)job_bytes();
  par::ThreadPool pool;
  const Context ctx = Context{}.with_pool(&pool);
  core::CoAnalysisConfig config;
  config.execution.engine = core::Engine::Batch;
  for (auto _ : state) {
    std::istringstream ras_in(ras_bytes());
    const ras::RasLog ras = ras::read_binary(ras_in, ras::default_catalog(),
                                             ParseMode::Strict, nullptr, nullptr, &pool);
    std::istringstream job_in(job_bytes());
    const joblog::JobLog jobs = joblog::read_binary(job_in);
    benchmark::DoNotOptimize(core::run_coanalysis(ras, jobs, config, ctx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_EndToEndBatchEngine)->Unit(benchmark::kMillisecond);

}  // namespace
