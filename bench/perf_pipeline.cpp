// End-to-end co-analysis benchmark on the full-scale Intrepid scenario:
// binary ingest -> filter -> match -> full methodology report, timed as one
// unit — the headline figure for the columnar hot path. Ingest reads from an
// in-memory image of the binary v2 logs, so the numbers measure decode and
// analysis, not disk.
#include <benchmark/benchmark.h>

#include <sstream>

#include "coral/common/parallel.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::intrepid_scenario(42));
  return result;
}

const std::string& ras_bytes() {
  static const std::string bytes = [] {
    std::ostringstream out;
    ras::write_binary(out, data().ras);
    return out.str();
  }();
  return bytes;
}

const std::string& job_bytes() {
  static const std::string bytes = [] {
    std::ostringstream out;
    joblog::write_binary(out, data().jobs);
    return out.str();
  }();
  return bytes;
}

// --- Characterization-stage microbenchmarks -----------------------------
// The four stages downstream of matching, timed on the shared columnar
// inputs the pipeline passes them (CharColumns built once, like
// complete_coanalysis does), plus the column build itself. All run
// single-threaded so the numbers track the kernels, not the pool.

const filter::FilterPipelineResult& filtered() {
  static const filter::FilterPipelineResult result =
      filter::run_filter_pipeline(data().ras, {});
  return result;
}

const core::MatchResult& matches() {
  static const core::MatchResult result =
      core::match_interruptions(filtered(), data().jobs, {});
  return result;
}

const core::IdentificationResult& identification() {
  static const core::IdentificationResult result =
      core::identify_interruption_related(filtered(), matches(), data().jobs, {});
  return result;
}

const core::CharColumns& char_columns() {
  static const core::CharColumns result =
      core::build_char_columns(filtered(), matches(), data().jobs);
  return result;
}

const core::ClassificationResult& classification() {
  static const core::ClassificationResult result = core::classify_causes(
      filtered(), matches(), identification(), data().jobs, char_columns());
  return result;
}

void BM_CharColumns(benchmark::State& state) {
  (void)matches();
  for (auto _ : state) {
    const core::CharColumns cols =
        core::build_char_columns(filtered(), matches(), data().jobs);
    benchmark::DoNotOptimize(cols.chain_job.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().jobs.size()));
}
BENCHMARK(BM_CharColumns)->Unit(benchmark::kMillisecond);

void BM_Classification(benchmark::State& state) {
  (void)identification();
  (void)char_columns();
  for (auto _ : state) {
    const core::ClassificationResult result = core::classify_causes(
        filtered(), matches(), identification(), data().jobs, char_columns());
    benchmark::DoNotOptimize(result.by_code.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(identification().verdicts.size()));
}
BENCHMARK(BM_Classification)->Unit(benchmark::kMillisecond);

void BM_JobFilter(benchmark::State& state) {
  (void)classification();
  for (auto _ : state) {
    const core::JobFilterResult result = core::job_related_filter(
        filtered(), matches(), classification(), data().jobs, char_columns());
    benchmark::DoNotOptimize(result.kept.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(filtered().groups.size()));
}
BENCHMARK(BM_JobFilter)->Unit(benchmark::kMillisecond);

void BM_Propagation(benchmark::State& state) {
  (void)char_columns();
  for (auto _ : state) {
    const core::PropagationResult result =
        core::analyze_propagation(filtered(), matches(), data().jobs, char_columns());
    benchmark::DoNotOptimize(result.propagating_groups.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(matches().interruptions.size()));
}
BENCHMARK(BM_Propagation)->Unit(benchmark::kMillisecond);

void BM_Vulnerability(benchmark::State& state) {
  (void)classification();
  for (auto _ : state) {
    const core::VulnerabilityResult result = core::analyze_vulnerability(
        filtered(), matches(), classification(), data().jobs, char_columns());
    benchmark::DoNotOptimize(result.grid.total.total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().jobs.size()));
}
BENCHMARK(BM_Vulnerability)->Unit(benchmark::kMillisecond);

void BM_EndToEndCoAnalysis(benchmark::State& state) {
  (void)ras_bytes();
  (void)job_bytes();
  par::ThreadPool pool;
  const Context ctx = Context{}.with_pool(&pool);
  std::size_t interruptions = 0;
  for (auto _ : state) {
    std::istringstream ras_in(ras_bytes());
    const ras::RasLog ras = ras::read_binary(ras_in, ras::default_catalog(),
                                             ParseMode::Strict, nullptr, nullptr, &pool);
    std::istringstream job_in(job_bytes());
    const joblog::JobLog jobs = joblog::read_binary(job_in);
    const core::CoAnalysisResult result = core::run_coanalysis(ras, jobs, {}, ctx);
    interruptions = result.interruption_count();
    benchmark::DoNotOptimize(result.matches.interruptions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
  state.counters["interruptions"] = static_cast<double>(interruptions);
}
BENCHMARK(BM_EndToEndCoAnalysis)->Unit(benchmark::kMillisecond);

void BM_EndToEndBatchEngine(benchmark::State& state) {
  (void)ras_bytes();
  (void)job_bytes();
  par::ThreadPool pool;
  const Context ctx = Context{}.with_pool(&pool);
  core::CoAnalysisConfig config;
  config.execution.engine = core::Engine::Batch;
  for (auto _ : state) {
    std::istringstream ras_in(ras_bytes());
    const ras::RasLog ras = ras::read_binary(ras_in, ras::default_catalog(),
                                             ParseMode::Strict, nullptr, nullptr, &pool);
    std::istringstream job_in(job_bytes());
    const joblog::JobLog jobs = joblog::read_binary(job_in);
    benchmark::DoNotOptimize(core::run_coanalysis(ras, jobs, config, ctx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data().ras.size()));
}
BENCHMARK(BM_EndToEndBatchEngine)->Unit(benchmark::kMillisecond);

}  // namespace
