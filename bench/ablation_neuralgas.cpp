// Baseline comparison: the neural-gas clustering filter (after Hacker et
// al. [10]) against the paper's temporal-spatial + causality pipeline,
// scored against generator ground truth — and against both, the value the
// job-related step adds on top.
#include <cstdio>

#include "coral/filter/neuralgas.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const auto events = data.ras.fatal_events();
  std::size_t truth_independent = 0;
  for (const auto& f : data.truth.faults) truth_independent += f.redundant_of < 0 ? 1 : 0;
  std::printf("%zu raw FATAL records; %zu ground-truth faults (%zu independent)\n\n",
              events.size(), data.truth.faults.size(), truth_independent);

  const auto pipeline = filter::run_filter_pipeline(data.ras, {});
  std::printf("%-38s %8s\n", "filter", "groups");
  std::printf("%-38s %8zu\n", "temporal-spatial + causality (paper)",
              pipeline.groups.size());

  for (const std::size_t units : {16UL, 64UL, 256UL, 512UL}) {
    filter::NeuralGasFilterConfig config;
    config.gas.units = units;
    const auto groups = filter::neural_gas_filter(events, config);
    std::printf("neural gas, %3zu units%17s %8zu\n", units, "", groups.size());
  }
  {
    filter::NeuralGasFilterConfig config;  // auto-sized codebook
    const auto groups = filter::neural_gas_filter(events, config);
    std::printf("%-38s %8zu\n", "neural gas, auto codebook", groups.size());
  }

  std::printf("\nReading: with a well-sized codebook the clustering baseline lands in\n"
              "the same range as the threshold pipeline, but its output is sensitive\n"
              "to the codebook size — and like the paper's own filters it cannot see\n"
              "job-related redundancy, which needs the job log (§IV-C).\n");
  return 0;
}
