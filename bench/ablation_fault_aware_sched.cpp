// Closed-loop §VII experiment: re-run the machine simulation with the
// fault-aware placement policy enabled (the scheduler avoids midplanes that
// reported a FATAL event recently) and compare ground-truth interruptions
// against the default scheduler. Unlike examples/fault_aware_scheduling
// (a replay-based what-if), this actually changes the placements.
#include <cstdio>

#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  constexpr std::uint64_t kSeeds[] = {42, 43, 44, 45, 46};
  constexpr std::size_t kNSeeds = sizeof(kSeeds) / sizeof(kSeeds[0]);
  std::printf("(each row averages %zu seeds)\n", kNSeeds);
  std::printf("%14s %10s %12s %12s %12s %10s\n", "avoid_window", "jobs", "interruptions",
              "system", "application", "rehits");

  for (const double hours : {0.0, 6.0, 24.0}) {
    double jobs = 0, total = 0, sys = 0, app = 0, rehits = 0;
    const ras::Catalog& cat = ras::Catalog::instance();
    for (const std::uint64_t seed : kSeeds) {
      synth::ScenarioConfig config = synth::intrepid_scenario(seed);
      config.sched.avoid_failed_window = static_cast<Usec>(hours * kUsecPerHour);
      const synth::SynthResult data = synth::generate(config);
      jobs += static_cast<double>(data.jobs.size());
      total += static_cast<double>(data.truth.interruptions.size());
      for (const auto& in : data.truth.interruptions) {
        if (cat.info(in.code).nature == ras::FaultNature::ApplicationError) {
          app += 1;
        } else {
          sys += 1;
        }
      }
      for (const auto& f : data.truth.faults) rehits += f.redundant_of >= 0 ? 1 : 0;
    }
    const double n = static_cast<double>(kNSeeds);
    std::printf("%12.0f h %10.0f %12.1f %12.1f %12.1f %10.1f\n", hours, jobs / n,
                total / n, sys / n, app / n, rehits / n);
  }

  std::printf("\nReading: avoiding recently-failed midplanes starves the persistent-\n"
              "fault kill chains (system interruptions and re-hits drop ~15-30%%) at\n"
              "no throughput cost — the paper's §VII scheduler recommendation,\n"
              "closed loop.\n");
  return 0;
}
