// Regenerates Table V: Weibull parameters of job-interruption interarrival
// times by cause (system failures vs application errors), plus the MTTI/MTBF
// comparison of §VI-B (Observation 7).
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Table V: Weibull fits of job-interruption interarrival times\n");
  std::printf("%-22s %10s %12s %12s %14s\n", "Interruption Cause", "Shape", "Scale", "Mean",
              "Variance");
  const auto row = [](const char* name, const core::InterarrivalFit& fit) {
    std::printf("%-22s %10.6f %12.1f %12.0f %14.5e\n", name, fit.weibull.shape(),
                fit.weibull.scale(), fit.weibull.mean(), fit.weibull.variance());
  };
  row("System failures", r.interruptions_system);
  row("Application errors", r.interruptions_application);
  std::printf("%-22s %10.6f %12.1f %12.0f %14.5e   [paper]\n", "  (paper system)",
              0.346296, 23075.3, 120454.0, 2.38219e11);
  std::printf("%-22s %10.6f %12.1f %12.0f %14.5e   [paper]\n", "  (paper application)",
              0.301397, 23801.7, 215886.0, 1.33603e12);

  std::printf("\nLRT: system p=%.2e -> %s; application p=%.2e -> %s\n",
              r.interruptions_system.lrt.p_value,
              r.interruptions_system.lrt.weibull_preferred ? "Weibull" : "exponential",
              r.interruptions_application.lrt.p_value,
              r.interruptions_application.lrt.weibull_preferred ? "Weibull" : "exponential");

  const double mtti = r.interruptions_system.weibull.mean();
  const double mtbf = r.fatal_before_jobfilter.weibull.mean();
  std::printf("\nMTTI(app)/MTTI(system) = %.2f  [paper: ~1.8x]\n",
              r.interruptions_application.weibull.mean() / mtti);
  std::printf("MTTI(system)/MTBF      = %.2f  [paper: 4.07x]\n", mtti / mtbf);
  std::printf("\nShape check: both shapes < 1; application-error MTTI exceeds\n"
              "system-failure MTTI; interruption rate far below failure rate.\n");
  return 0;
}
