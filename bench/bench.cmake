# Bench binaries land directly in build/bench/ (and nothing else does),
# because the harness executes every file in that directory.

set(CORAL_BENCH_DIR ${CMAKE_CURRENT_LIST_DIR})

function(coral_bench name)
  add_executable(${name} ${CORAL_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE coral)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(coral_gbench name)
  coral_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark benchmark::benchmark_main)
endfunction()

# Benches with their own main() (fork-based RSS measurement does not fit the
# google-benchmark harness).
set(CORAL_SELFMAIN_BENCHES perf_streaming perf_scenarios)

file(GLOB CORAL_BENCH_SOURCES ${CORAL_BENCH_DIR}/*.cpp)
foreach(src ${CORAL_BENCH_SOURCES})
  get_filename_component(bname ${src} NAME_WE)
  if(bname IN_LIST CORAL_SELFMAIN_BENCHES)
    coral_bench(${bname})
  elseif(bname MATCHES "^perf_")
    coral_gbench(${bname})
  else()
    coral_bench(${bname})
  endif()
endforeach()
