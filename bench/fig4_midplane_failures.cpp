// Regenerates Fig. 4: per-midplane (a) fatal-event counts, (b) aggregate
// workload and (c) wide-job (>= 32 midplanes) workload. The paper's point:
// the failure-rate profile follows (c), not (b) — wide jobs, not aggregate
// load, drive failures (Observation 5). Midplanes 32–63 are the wide-job
// region (the paper's midplanes 33–64, 1-indexed).
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/stats/histogram.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

void print_series(const char* title,
                  const std::array<double, coral::bgp::Topology::kMidplanes>& values,
                  const char* unit) {
  std::printf("\n%s\n", title);
  double max_value = 1e-12;
  for (double v : values) max_value = std::max(max_value, v);
  for (int m = 0; m < coral::bgp::Topology::kMidplanes; m += 1) {
    const double v = values[static_cast<std::size_t>(m)];
    const auto bar = static_cast<int>(v * 48.0 / max_value + 0.5);
    std::printf("  mp %2d %s %10.1f %s |%.*s%s\n", m, (m >= 32 && m < 64) ? "*" : " ", v,
                unit, bar,
                "################################################", "");
  }
}

}  // namespace

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Fig. 4 (rows marked * are the wide-job region, midplanes 32-63)\n");
  print_series("(a) fatal events per midplane", r.fatal_events_per_midplane, "events");

  std::array<double, bgp::Topology::kMidplanes> work_hours{}, wide_hours{};
  for (std::size_t i = 0; i < work_hours.size(); ++i) {
    work_hours[i] = r.workload_per_midplane[i] / 3600.0;
    wide_hours[i] = r.wide_workload_per_midplane[i] / 3600.0;
  }
  print_series("(b) workload per midplane", work_hours, "hours");
  print_series("(c) wide-job (>=32 midplanes) workload per midplane", wide_hours, "hours");

  // Region summary like the paper's prose.
  double f_wide = 0, f_other = 0, w_wide = 0, w_other = 0, ww_wide = 0, ww_other = 0;
  for (int m = 0; m < bgp::Topology::kMidplanes; ++m) {
    const auto i = static_cast<std::size_t>(m);
    const bool in_region = m >= 32 && m < 64;
    (in_region ? f_wide : f_other) += r.fatal_events_per_midplane[i];
    (in_region ? w_wide : w_other) += r.workload_per_midplane[i];
    (in_region ? ww_wide : ww_other) += r.wide_workload_per_midplane[i];
  }
  std::printf("\nRegion summary (per-midplane averages, 32-63 vs rest):\n");
  std::printf("  fatal events:      %8.2f vs %8.2f  (ratio %.2f)\n", f_wide / 32,
              f_other / 48, (f_wide / 32) / (f_other / 48));
  std::printf("  total workload:    %8.0f vs %8.0f hours (ratio %.2f)\n",
              w_wide / 32 / 3600, w_other / 48 / 3600,
              (w_wide / 32) / (w_other / 48));
  std::printf("  wide-job workload: %8.0f vs %8.0f hours (ratio %.2f)\n",
              ww_wide / 32 / 3600, ww_other / 48 / 3600,
              ww_other > 0 ? (ww_wide / 32) / (ww_other / 48) : 0.0);
  std::printf("\nShape check: fatal events track wide-job workload, not total workload\n"
              "(Observation 5: high aggregate load != high failure rate).\n");
  return 0;
}
