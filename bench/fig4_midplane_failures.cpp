// Regenerates Fig. 4: per-midplane (a) fatal-event counts, (b) aggregate
// workload and (c) wide-job (>= 32 midplanes) workload. The paper's point:
// the failure-rate profile follows (c), not (b) — wide jobs, not aggregate
// load, drive failures (Observation 5). Midplanes 32–63 are the wide-job
// region (the paper's midplanes 33–64, 1-indexed).
#include <cstdio>
#include <vector>

#include "coral/core/pipeline.hpp"
#include "coral/stats/histogram.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

void print_series(const char* title, const std::vector<double>& values,
                  const coral::machine::PlacementZones& zones, const char* unit) {
  std::printf("\n%s\n", title);
  double max_value = 1e-12;
  for (double v : values) max_value = std::max(max_value, v);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int m = static_cast<int>(i);
    const double v = values[i];
    const auto bar = static_cast<int>(v * 48.0 / max_value + 0.5);
    const bool in_region =
        m >= zones.wide_first && m < zones.wide_first + zones.wide_count;
    std::printf("  mp %2d %s %10.1f %s |%.*s%s\n", m, in_region ? "*" : " ", v,
                unit, bar,
                "################################################", "");
  }
}

}  // namespace

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(42));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);
  const machine::PlacementZones zones = r.machine().placement_zones();
  const int n = r.machine().midplane_count();
  const int wide_lo = zones.wide_first;
  const int wide_hi = zones.wide_first + zones.wide_count;

  std::printf("Fig. 4 (rows marked * are the wide-job region, midplanes %d-%d)\n",
              wide_lo, wide_hi - 1);
  print_series("(a) fatal events per midplane", r.fatal_events_per_midplane, zones,
               "events");

  std::vector<double> work_hours(r.workload_per_midplane.size());
  std::vector<double> wide_hours(r.wide_workload_per_midplane.size());
  for (std::size_t i = 0; i < work_hours.size(); ++i) {
    work_hours[i] = r.workload_per_midplane[i] / 3600.0;
    wide_hours[i] = r.wide_workload_per_midplane[i] / 3600.0;
  }
  print_series("(b) workload per midplane", work_hours, zones, "hours");
  print_series("(c) wide-job (>=32 midplanes) workload per midplane", wide_hours,
               zones, "hours");

  // Region summary like the paper's prose.
  const double n_in = wide_hi - wide_lo;
  const double n_out = n - n_in;
  double f_wide = 0, f_other = 0, w_wide = 0, w_other = 0, ww_wide = 0, ww_other = 0;
  for (int m = 0; m < n; ++m) {
    const auto i = static_cast<std::size_t>(m);
    const bool in_region = m >= wide_lo && m < wide_hi;
    (in_region ? f_wide : f_other) += r.fatal_events_per_midplane[i];
    (in_region ? w_wide : w_other) += r.workload_per_midplane[i];
    (in_region ? ww_wide : ww_other) += r.wide_workload_per_midplane[i];
  }
  std::printf("\nRegion summary (per-midplane averages, %d-%d vs rest):\n", wide_lo,
              wide_hi - 1);
  std::printf("  fatal events:      %8.2f vs %8.2f  (ratio %.2f)\n", f_wide / n_in,
              f_other / n_out, (f_wide / n_in) / (f_other / n_out));
  std::printf("  total workload:    %8.0f vs %8.0f hours (ratio %.2f)\n",
              w_wide / n_in / 3600, w_other / n_out / 3600,
              (w_wide / n_in) / (w_other / n_out));
  std::printf("  wide-job workload: %8.0f vs %8.0f hours (ratio %.2f)\n",
              ww_wide / n_in / 3600, ww_other / n_out / 3600,
              ww_other > 0 ? (ww_wide / n_in) / (ww_other / n_out) : 0.0);
  std::printf("\nShape check: fatal events track wide-job workload, not total workload\n"
              "(Observation 5: high aggregate load != high failure rate).\n");
  return 0;
}
