// Throughput and peak-RSS comparison of the co-analysis front-ends on a
// full-scale (~2M-record) Intrepid log pair: the batch passes vs the
// streaming engine at one shard and at N shards, plus a "full" mode that
// runs the entire co-analysis (front-end + characterization stages) under
// obs so the per-stage breakdown lands in the trajectory file.
//
// Self-main rather than google-benchmark: each mode's peak RSS is measured
// in a forked child (copy-on-write shares the generated logs) so the modes
// cannot pollute each other's high-water mark, and wall-clock throughput is
// best-of-R in the parent. Emits one JSON object on stdout.
//
//   $ ./perf_streaming [seed] [target_shards] [reps]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "coral/common/instrument.hpp"
#include "coral/common/parallel.hpp"
#include "coral/context.hpp"
#include "coral/obs/obs.hpp"
#include "coral/core/matching.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/stream/coanalysis.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

struct ModeResult {
  std::string name;
  double seconds = 0;
  long peak_rss_kb = 0;
  std::size_t shards = 1;
  std::size_t peak_stage_state = 0;
  std::size_t interruptions = 0;
  std::string obs_json = "{}";  ///< obs snapshot (spans/counters/histograms)
                                ///< from the last RSS rep
};

template <typename Fn>
double best_seconds(Fn&& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Peak RSS (KiB) of one run of `fn`, in a forked child. The logs are shared
// copy-on-write, so the child's ru_maxrss is the shared baseline plus what
// the mode itself allocates — a like-for-like comparison across modes.
template <typename Fn>
long forked_peak_rss_kb(Fn&& fn) {
  const pid_t pid = fork();
  if (pid == 0) {
    fn();
    _exit(0);
  }
  if (pid < 0) return -1;
  int status = 0;
  struct rusage ru{};
  if (wait4(pid, &status, 0, &ru) < 0) return -1;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return -1;
  return ru.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int target_shards = argc > 2 ? std::atoi(argv[2]) : 8;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;

  std::fprintf(stderr, "generating full Intrepid scenario (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(seed));
  const std::size_t records = data.ras.size() + 2 * data.jobs.size();

  // CORAL_THREADS or the hardware. Only used to report the size below: each
  // sharded run constructs its own pool *inside* the measured function, so
  // the forked RSS child owns live worker threads (a pool created before
  // fork() would leave the child waiting on workers that only exist in the
  // parent).
  const std::size_t pool_threads =
      par::ThreadPool(par::configured_thread_count()).thread_count();

  std::vector<ModeResult> modes;

  {
    ModeResult m;
    m.name = "batch";
    // The timed reps run with a null collector (the zero-overhead
    // configuration being measured); a separate instrumented rep feeds the
    // obs snapshot into BENCH_streaming.json.
    const auto run = [&data, &m](obs::Collector* obs) {
      filter::FilterPipelineConfig fc;
      fc.obs = obs;
      const auto filtered = filter::run_filter_pipeline(data.ras, fc);
      core::MatchConfig mc;
      mc.obs = obs;
      const auto matches = core::match_interruptions(filtered, data.jobs, mc);
      m.interruptions = matches.interruptions.size();
    };
    m.seconds = best_seconds([&run] { run(nullptr); }, reps);
    m.peak_rss_kb = forked_peak_rss_kb([&run] { run(nullptr); });
    obs::Collector collector;
    run(&collector);
    m.obs_json = obs::snapshot_json(collector.snapshot());
    modes.push_back(m);
  }

  for (const int shards : {1, target_shards}) {
    ModeResult m;
    m.name = shards == 1 ? "stream-1shard" : "stream-nshard";
    const auto run = [&data, shards, &m](obs::Collector* obs) {
      std::optional<par::ThreadPool> pool;
      if (shards > 1) pool.emplace(par::configured_thread_count());
      if (pool && obs != nullptr) pool->set_obs(obs);
      stream::FrontEndConfig config;
      config.shards = shards;
      Context ctx = Context().with_pool(pool ? &*pool : nullptr);
      if (obs != nullptr) ctx.with_obs(obs);
      const auto front = stream::run_streaming_frontend(data.ras, data.jobs, config, ctx);
      m.interruptions = front.matches.interruptions.size();
      m.shards = front.shards_used;
      m.peak_stage_state = front.peak_stage_state;
    };
    m.seconds = best_seconds([&run] { run(nullptr); }, reps);
    m.peak_rss_kb = forked_peak_rss_kb([&run] { run(nullptr); });
    obs::Collector collector;
    run(&collector);
    m.obs_json = obs::snapshot_json(collector.snapshot());
    modes.push_back(m);
  }

  {
    // Whole-pipeline mode: the streaming front-end plus every downstream
    // characterization stage (identification, columns, classification, job
    // filter, propagation, vulnerability). Its obs snapshot is what puts the
    // per-stage characterization breakdown into the trajectory file —
    // BM_FullCoAnalysis gates the total, this records the split.
    ModeResult m;
    m.name = "full";
    const auto run = [&data, &m](obs::Collector* obs) {
      std::optional<par::ThreadPool> pool;
      pool.emplace(par::configured_thread_count());
      if (obs != nullptr) pool->set_obs(obs);
      Context ctx = Context().with_pool(&*pool);
      if (obs != nullptr) ctx.with_obs(obs);
      const core::CoAnalysisResult result =
          core::run_coanalysis(data.ras, data.jobs, {}, ctx);
      m.interruptions = result.matches.interruptions.size();
      m.shards = result.shards_used;
      m.peak_stage_state = result.peak_stage_state;
    };
    m.seconds = best_seconds([&run] { run(nullptr); }, reps);
    m.peak_rss_kb = forked_peak_rss_kb([&run] { run(nullptr); });
    obs::Collector collector;
    run(&collector);
    m.obs_json = obs::snapshot_json(collector.snapshot());
    modes.push_back(m);
  }

  const double batch_rps = static_cast<double>(records) / modes[0].seconds;
  const double nshard_rps = static_cast<double>(records) / modes[2].seconds;  // stream-nshard

  std::printf("{\n");
  std::printf("  \"records\": %zu,\n", records);
  std::printf("  \"ras_records\": %zu,\n", data.ras.size());
  std::printf("  \"fatal_records\": %zu,\n", data.ras.summary().fatal_records);
  std::printf("  \"jobs\": %zu,\n", data.jobs.size());
  std::printf("  \"pool_threads\": %zu,\n", pool_threads);
  std::printf("  \"modes\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::printf("    {\"name\": \"%s\", \"seconds\": %.6f, \"records_per_sec\": %.0f, "
                "\"peak_rss_kb\": %ld, \"shards\": %zu, \"peak_stage_state\": %zu, "
                "\"interruptions\": %zu}%s\n",
                m.name.c_str(), m.seconds,
                static_cast<double>(records) / m.seconds, m.peak_rss_kb, m.shards,
                m.peak_stage_state, m.interruptions, i + 1 < modes.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"nshard_vs_batch_speedup\": %.2f\n", nshard_rps / batch_rps);
  std::printf("}\n");

  // Machine-readable obs snapshots (spans + counters + histograms) for CI
  // trend tracking; one object per mode, from a dedicated instrumented rep.
  {
    std::ofstream out("BENCH_streaming.json");
    out << "{\n  \"bench\": \"perf_streaming\",\n  \"records\": " << records
        << ",\n  \"modes\": [\n";
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const ModeResult& m = modes[i];
      out << "    {\"name\": \"" << m.name << "\", \"seconds\": " << m.seconds
          << ", \"shards\": " << m.shards << ", \"obs\": " << m.obs_json << "}"
          << (i + 1 < modes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "obs snapshots written to BENCH_streaming.json\n");
  }

  // The interruption lists must agree across every mode (byte-identity).
  for (const ModeResult& m : modes) {
    if (m.interruptions != modes[0].interruptions) {
      std::fprintf(stderr, "MISMATCH: %s found %zu interruptions vs batch %zu\n",
                   m.name.c_str(), m.interruptions, modes[0].interruptions);
      return 1;
    }
  }
  return 0;
}
