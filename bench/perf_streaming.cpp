// Throughput and peak-RSS comparison of the co-analysis front-ends on a
// full-scale (~2M-record) Intrepid log pair: the batch passes vs the
// streaming engine at one shard and at N shards.
//
// Self-main rather than google-benchmark: each mode's peak RSS is measured
// in a forked child (copy-on-write shares the generated logs) so the modes
// cannot pollute each other's high-water mark, and wall-clock throughput is
// best-of-R in the parent. Emits one JSON object on stdout.
//
//   $ ./perf_streaming [seed] [target_shards] [reps]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "coral/common/instrument.hpp"
#include "coral/common/parallel.hpp"
#include "coral/context.hpp"
#include "coral/core/matching.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/stream/coanalysis.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

struct ModeResult {
  std::string name;
  double seconds = 0;
  long peak_rss_kb = 0;
  std::size_t shards = 1;
  std::size_t peak_stage_state = 0;
  std::size_t interruptions = 0;
  std::string stages_json = "[]";  ///< per-stage timings from the last rep
};

template <typename Fn>
double best_seconds(Fn&& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Peak RSS (KiB) of one run of `fn`, in a forked child. The logs are shared
// copy-on-write, so the child's ru_maxrss is the shared baseline plus what
// the mode itself allocates — a like-for-like comparison across modes.
template <typename Fn>
long forked_peak_rss_kb(Fn&& fn) {
  const pid_t pid = fork();
  if (pid == 0) {
    fn();
    _exit(0);
  }
  if (pid < 0) return -1;
  int status = 0;
  struct rusage ru{};
  if (wait4(pid, &status, 0, &ru) < 0) return -1;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return -1;
  return ru.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int target_shards = argc > 2 ? std::atoi(argv[2]) : 8;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;

  std::fprintf(stderr, "generating full Intrepid scenario (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  const synth::SynthResult data = synth::generate(synth::intrepid_scenario(seed));
  const std::size_t records = data.ras.size() + 2 * data.jobs.size();

  // CORAL_THREADS or the hardware. Only used to report the size below: each
  // sharded run constructs its own pool *inside* the measured function, so
  // the forked RSS child owns live worker threads (a pool created before
  // fork() would leave the child waiting on workers that only exist in the
  // parent).
  const std::size_t pool_threads =
      par::ThreadPool(par::configured_thread_count()).thread_count();

  std::vector<ModeResult> modes;

  {
    ModeResult m;
    m.name = "batch";
    const auto run = [&data, &m] {
      const auto filtered = filter::run_filter_pipeline(data.ras, {});
      const auto matches = core::match_interruptions(filtered, data.jobs, {});
      m.interruptions = matches.interruptions.size();
    };
    m.seconds = best_seconds(run, reps);
    m.peak_rss_kb = forked_peak_rss_kb(run);
    modes.push_back(m);
  }

  for (const int shards : {1, target_shards}) {
    ModeResult m;
    m.name = shards == 1 ? "stream-1shard" : "stream-nshard";
    const auto run = [&data, shards, &m] {
      std::optional<par::ThreadPool> pool;
      if (shards > 1) pool.emplace(par::configured_thread_count());
      stream::FrontEndConfig config;
      config.shards = shards;
      RecordingSink sink;
      const Context ctx = Context().with_pool(pool ? &*pool : nullptr).with_sink(&sink);
      const auto front = stream::run_streaming_frontend(data.ras, data.jobs, config, ctx);
      m.interruptions = front.matches.interruptions.size();
      m.shards = front.shards_used;
      m.peak_stage_state = front.peak_stage_state;
      m.stages_json = sink.to_json();
    };
    m.seconds = best_seconds(run, reps);
    m.peak_rss_kb = forked_peak_rss_kb(run);
    modes.push_back(m);
  }

  const double batch_rps = static_cast<double>(records) / modes[0].seconds;
  const double nshard_rps = static_cast<double>(records) / modes.back().seconds;

  std::printf("{\n");
  std::printf("  \"records\": %zu,\n", records);
  std::printf("  \"ras_records\": %zu,\n", data.ras.size());
  std::printf("  \"fatal_records\": %zu,\n", data.ras.summary().fatal_records);
  std::printf("  \"jobs\": %zu,\n", data.jobs.size());
  std::printf("  \"pool_threads\": %zu,\n", pool_threads);
  std::printf("  \"modes\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::printf("    {\"name\": \"%s\", \"seconds\": %.6f, \"records_per_sec\": %.0f, "
                "\"peak_rss_kb\": %ld, \"shards\": %zu, \"peak_stage_state\": %zu, "
                "\"interruptions\": %zu}%s\n",
                m.name.c_str(), m.seconds,
                static_cast<double>(records) / m.seconds, m.peak_rss_kb, m.shards,
                m.peak_stage_state, m.interruptions, i + 1 < modes.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"nshard_vs_batch_speedup\": %.2f\n", nshard_rps / batch_rps);
  std::printf("}\n");

  // Machine-readable per-stage timings (Context instrumentation) for CI
  // trend tracking; one object per mode, stages from the last timed rep.
  {
    std::ofstream out("BENCH_streaming.json");
    out << "{\n  \"bench\": \"perf_streaming\",\n  \"records\": " << records
        << ",\n  \"modes\": [\n";
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const ModeResult& m = modes[i];
      out << "    {\"name\": \"" << m.name << "\", \"seconds\": " << m.seconds
          << ", \"shards\": " << m.shards << ", \"stages\": " << m.stages_json << "}"
          << (i + 1 < modes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "stage timings written to BENCH_streaming.json\n");
  }

  // The interruption lists must agree across every mode (byte-identity).
  for (const ModeResult& m : modes) {
    if (m.interruptions != modes[0].interruptions) {
      std::fprintf(stderr, "MISMATCH: %s found %zu interruptions vs batch %zu\n",
                   m.name.c_str(), m.interruptions, modes[0].interruptions);
      return 1;
    }
  }
  return 0;
}
